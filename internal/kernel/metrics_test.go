package kernel

import (
	"testing"

	"ticktock/internal/metrics"
)

// runMetered boots a flavour with a registry attached, runs hello, and
// returns the kernel.
func runMetered(t *testing.T, fl Flavour, reg *metrics.Registry) *Kernel {
	t.Helper()
	k := newTestKernel(t, Options{Flavour: fl, Metrics: reg})
	p := load(t, k, helloApp("hello", "hi"))
	run(t, k)
	if p.State != StateExited {
		t.Fatalf("state=%v reason=%q", p.State, p.FaultReason)
	}
	return k
}

func TestKernelMetricsWiring(t *testing.T) {
	for _, fl := range []Flavour{FlavourTickTock, FlavourTock} {
		t.Run(fl.String(), func(t *testing.T) {
			reg := metrics.NewRegistry()
			k := runMetered(t, fl, reg)
			flavour := metrics.L("flavour", fl.String())

			if got := reg.Counter("ticktock_context_switches_total", flavour).Value(); got != k.Switches {
				t.Fatalf("switch counter %d != k.Switches %d", got, k.Switches)
			}
			// hello issues 2 commands ('h', 'i') and one exit.
			if got := reg.Counter("ticktock_syscalls_total", flavour, metrics.L("class", "command")).Value(); got != 2 {
				t.Fatalf("command counter = %d", got)
			}
			if got := reg.Counter("ticktock_syscalls_total", flavour, metrics.L("class", "exit")).Value(); got != 1 {
				t.Fatalf("exit counter = %d", got)
			}
			h := reg.Histogram("ticktock_syscall_cycles", flavour, metrics.L("class", "command"))
			if h.Count() != 2 || h.Sum() == 0 {
				t.Fatalf("command cycle histogram count=%d sum=%d", h.Count(), h.Sum())
			}
			// The MPU reconfigure histogram observes once per switch-in.
			if mh := reg.Histogram("ticktock_mpu_reconfigure_cycles", flavour); mh.Count() == 0 {
				t.Fatal("MPU reconfigure histogram empty")
			}
			// Machine-level counters flow through AttachMetrics.
			if reg.Counter("armv7m_instructions_total", flavour).Value() == 0 {
				t.Fatal("instruction counter empty")
			}
			if reg.Counter("armv7m_exceptions_total", flavour, metrics.L("exc", "svcall")).Value() != 3 {
				t.Fatal("svcall exception count != 3 syscalls")
			}
			if reg.Counter("armv7m_mpu_region_writes_total", flavour).Value() == 0 {
				t.Fatal("MPU region write counter empty")
			}

			// The per-method histogram mirrors the Stats collector.
			for _, m := range k.Stats.Methods() {
				mh := reg.Histogram("ticktock_method_cycles", flavour, metrics.L("method", m))
				if st := k.Stats.Get(m); mh.Count() != st.Count || mh.Sum() != st.Cycles {
					t.Fatalf("method %s: histogram (%d,%d) != stats (%d,%d)",
						m, mh.Count(), mh.Sum(), st.Count, st.Cycles)
				}
			}

			// PublishMetrics lands the Figure 11 totals as counters.
			k.PublishMetrics()
			for _, m := range k.Stats.Methods() {
				got := reg.Counter("ticktock_method_cycles_total", flavour, metrics.L("method", m)).Value()
				if want := k.Stats.Get(m).Cycles; got != want {
					t.Fatalf("published %s cycles %d != %d", m, got, want)
				}
			}
		})
	}
}

// TestProfileSumsToMeter is the folded-stack invariant at kernel scope:
// every simulated cycle lands in exactly one stack, so the profile total
// equals the cycle meter.
func TestProfileSumsToMeter(t *testing.T) {
	for _, fl := range []Flavour{FlavourTickTock, FlavourTock} {
		t.Run(fl.String(), func(t *testing.T) {
			k := runMetered(t, fl, metrics.NewRegistry())
			prof := k.Profile()
			if prof == nil {
				t.Fatal("no profile despite attached metrics")
			}
			if got, want := prof.Total(), k.Meter().Cycles(); got != want {
				t.Fatalf("profile total %d != meter %d\n%s", got, want, prof.FoldedDump())
			}
			// The profile must attribute real work, not dump everything
			// into the residue bucket.
			samples := prof.Samples()
			if samples[fl.String()+";hello;user"] == 0 {
				t.Fatalf("no user-mode attribution:\n%s", prof.FoldedDump())
			}
			if samples[fl.String()+";kernel;create"] == 0 {
				t.Fatalf("no create attribution:\n%s", prof.FoldedDump())
			}
			if res := samples[fl.String()+";kernel;unattributed"]; res*5 > prof.Total() {
				t.Fatalf("residue %d is over 20%% of total %d:\n%s", res, prof.Total(), prof.FoldedDump())
			}
		})
	}
}

// TestMetricsOff ensures a kernel without a registry still runs and
// returns a nil profile.
func TestMetricsOff(t *testing.T) {
	k := newTestKernel(t, Options{Flavour: FlavourTickTock})
	load(t, k, helloApp("hello", "x"))
	run(t, k)
	if k.Profile() != nil {
		t.Fatal("profile without metrics")
	}
	k.PublishMetrics() // must be a no-op, not a panic
}
