package kernel

import (
	"fmt"

	"ticktock/internal/armv7m"
	"ticktock/internal/cycles"
)

// Memory map of the simulated board, modelled on the NRF52840: 1 MiB of
// flash at 0 and 256 KiB of RAM at 0x2000_0000. The kernel owns the lower
// flash and the top of RAM; application flash slots and the process RAM
// pool fill the rest.
const (
	FlashBase = 0x0000_0000
	FlashSize = 0x0010_0000

	RAMBase = 0x2000_0000
	RAMSize = 0x0004_0000

	// AppFlashBase is where application images start.
	AppFlashBase = 0x0004_0000

	// KernelRAMSize is reserved at the top of RAM for the kernel stack
	// and data.
	KernelRAMSize = 0x0001_0000

	// KernelLowRAMSize is reserved at the bottom of RAM for kernel data,
	// as on Tock's NRF52840 layout. It doubles as a guard: a process
	// stack overrun lands in mapped-but-protected memory, so the CPU
	// takes a clean MemManage fault instead of locking up on exception
	// stacking into unmapped space.
	KernelLowRAMSize = 0x1000

	// ProcessPoolBase/Size is the RAM handed to the process allocators.
	ProcessPoolBase = RAMBase + KernelLowRAMSize
	ProcessPoolSize = RAMSize - KernelRAMSize - KernelLowRAMSize

	// KernelStackTop is the initial MSP.
	KernelStackTop = RAMBase + RAMSize - 16

	// KernelDataBase is a kernel-owned RAM address used by isolation
	// tests as a victim location.
	KernelDataBase = RAMBase + RAMSize - KernelRAMSize
)

// Board ties the machine model to the kernel's memory map.
type Board struct {
	Machine *armv7m.Machine
	Meter   *cycles.Meter
	flash   *armv7m.Segment
	ram     *armv7m.Segment

	// nextFlashSlot is the bump pointer for application flash slots.
	nextFlashSlot uint32
}

// NewBoard constructs the simulated chip.
func NewBoard() (*Board, error) {
	mem := armv7m.NewMemory()
	flash, err := mem.Map("flash", FlashBase, FlashSize)
	if err != nil {
		return nil, err
	}
	ram, err := mem.Map("ram", RAMBase, RAMSize)
	if err != nil {
		return nil, err
	}
	m := armv7m.NewMachine(mem)
	m.CPU.MSP = KernelStackTop
	return &Board{
		Machine:       m,
		Meter:         m.Meter,
		flash:         flash,
		ram:           ram,
		nextFlashSlot: AppFlashBase,
	}, nil
}

// AllocFlashSlot reserves a power-of-two-sized, size-aligned flash slot of
// at least need bytes, so the MPU can cover it exactly, and returns its
// base.
func (b *Board) AllocFlashSlot(need uint32) (base, size uint32, err error) {
	size = 32
	for size < need {
		size <<= 1
	}
	base = (b.nextFlashSlot + size - 1) &^ (size - 1)
	if uint64(base)+uint64(size) > FlashBase+FlashSize {
		return 0, 0, fmt.Errorf("kernel: flash exhausted (need %d bytes)", need)
	}
	b.nextFlashSlot = base + size
	return base, size, nil
}

// WriteFlash stores raw image bytes (e.g. a TBF header) into flash.
func (b *Board) WriteFlash(addr uint32, data []byte) error {
	return b.Machine.Mem.WriteBytes(addr, data)
}

// ReadRAM is a kernel-privilege read used by drivers (the MPU does not
// constrain the kernel).
func (b *Board) ReadRAM(addr, n uint32) ([]byte, error) {
	return b.Machine.Mem.ReadBytes(addr, n)
}
