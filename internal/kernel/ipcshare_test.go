package kernel

import (
	"strings"
	"testing"

	"ticktock/internal/armv7m"
	"ticktock/internal/mpu"
)

// shareService writes a secret into its RAM, shares its memory with
// process 1, wakes it, and parks.
func shareService() App {
	return App{
		Name: "service", MinRAM: 10240, InitRAM: 2048, Stack: 1024, KernelHint: 512,
		Build: func(base uint32) *armv7m.Program {
			a := armv7m.NewAssembler(base)
			// [memoryStart+1700] = 'S'
			a.Emit(armv7m.MovReg{Rd: armv7m.R4, Rm: armv7m.R0}).
				Emit(armv7m.AddImm{Rd: armv7m.R4, Rn: armv7m.R4, Imm: 1700}).
				Emit(armv7m.MovImm{Rd: armv7m.R5, Imm: 'S'}).
				Emit(armv7m.Strb{Rt: armv7m.R5, Rn: armv7m.R4, Imm: 0})
			// share with process 1
			emitSyscall4(a, SVCCommand, DriverIPC, 1, 1, 0)
			a.Emit(armv7m.CmpImm{Rn: armv7m.R0, Imm: RetSuccess})
			a.BTo(armv7m.NE, "fail")
			emitPuts(a, "shared ")
			emitExit(a, 0)
			a.Label("fail")
			emitPuts(a, "share FAIL")
			emitExit(a, 1)
			return a.MustAssemble()
		},
	}
}

// shareClient waits, then reads the given address (inside the service's
// shared RAM) directly through the mapped region.
func shareClient(secretAddr uint32) App {
	return App{
		Name: "client", MinRAM: 10240, InitRAM: 2048, Stack: 1024, KernelHint: 512,
		Build: func(base uint32) *armv7m.Program {
			a := armv7m.NewAssembler(base)
			// Let the service run first.
			emitSyscall4(a, SVCCommand, DriverAlarm, 1, 50000, 0)
			a.Emit(armv7m.SVC{Imm: SVCYield})
			a.Emit(armv7m.MovImm{Rd: armv7m.R4, Imm: secretAddr}).
				Emit(armv7m.Ldrb{Rt: armv7m.R5, Rn: armv7m.R4, Imm: 0})
			PutcharRegLocal(a)
			emitExit(a, 0)
			return a.MustAssemble()
		},
	}
}

// PutcharRegLocal prints the low byte of r5.
func PutcharRegLocal(a *armv7m.Assembler) {
	a.Emit(armv7m.MovImm{Rd: armv7m.R0, Imm: DriverConsole}).
		Emit(armv7m.MovImm{Rd: armv7m.R1, Imm: 0}).
		Emit(armv7m.MovReg{Rd: armv7m.R2, Rm: armv7m.R5}).
		Emit(armv7m.SVC{Imm: SVCCommand})
}

func TestIPCShareGrantsDirectAccess(t *testing.T) {
	for _, fl := range []Flavour{FlavourTickTock, FlavourTock} {
		t.Run(fl.String(), func(t *testing.T) {
			k := newTestKernel(t, Options{Flavour: fl})
			svc := load(t, k, shareService())
			cli := load(t, k, shareClient(svc.MM.Layout().MemoryStart+1700))
			run(t, k)
			if svc.State != StateExited || !strings.Contains(k.Output(svc), "shared") {
				t.Fatalf("service: state=%v out=%q", svc.State, k.Output(svc))
			}
			if cli.State != StateExited || k.Output(cli) != "S" {
				t.Fatalf("client: state=%v out=%q reason=%q", cli.State, k.Output(cli), cli.FaultReason)
			}
		})
	}
}

func TestIPCNoShareMeansFault(t *testing.T) {
	// Without the share, the same direct read faults on both flavours:
	// the mapping is what makes it legal.
	noShare := App{
		Name: "noshare", MinRAM: 10240, InitRAM: 2048, Stack: 1024, KernelHint: 512,
		Build: func(base uint32) *armv7m.Program {
			a := armv7m.NewAssembler(base)
			a.Emit(armv7m.MovImm{Rd: armv7m.R4, Imm: ProcessPoolBase + 1700}).
				Emit(armv7m.Ldrb{Rt: armv7m.R5, Rn: armv7m.R4, Imm: 0})
			emitPuts(a, "UNREACHABLE")
			emitExit(a, 0)
			return a.MustAssemble()
		},
	}
	for _, fl := range []Flavour{FlavourTickTock, FlavourTock} {
		t.Run(fl.String(), func(t *testing.T) {
			k := newTestKernel(t, Options{Flavour: fl})
			load(t, k, helloApp("occupant", "x")) // owns the first pool block
			snooper := load(t, k, noShare)
			run(t, k)
			if snooper.State != StateFaulted {
				t.Fatalf("state=%v out=%q", snooper.State, k.Output(snooper))
			}
		})
	}
}

func TestIPCUnshareRevokesAccess(t *testing.T) {
	k := newTestKernel(t, Options{Flavour: FlavourTickTock})
	svc := load(t, k, shareService())
	cli := load(t, k, shareClient(svc.MM.Layout().MemoryStart+1700))
	// Run until the share happened and the client read the byte.
	run(t, k)
	if k.Output(cli) != "S" {
		t.Fatalf("client never read: %q (%v)", k.Output(cli), cli.State)
	}
	// Revoke via the kernel API and confirm the hardware no longer
	// admits the client's access.
	if err := cli.MM.UnshareRegion(); err != nil {
		t.Fatal(err)
	}
	if err := cli.MM.ConfigureMPU(); err != nil {
		t.Fatal(err)
	}
	hw := k.Board.Machine.MPU
	if hw.Check(svc.MM.Layout().MemoryStart+1700, readKind(), false) == nil {
		t.Fatal("revoked mapping still admits access")
	}
}

func TestIPCShareRejectsBadTargets(t *testing.T) {
	k := newTestKernel(t, Options{Flavour: FlavourTickTock})
	p := load(t, k, helloApp("solo", "x"))
	// Sharing with yourself or a nonexistent process is invalid.
	if got := k.ipcCmd(p, 1, uint32(p.ID)); got != RetInvalid {
		t.Fatalf("self-share ret=%#x", got)
	}
	if got := k.ipcCmd(p, 1, 99); got != RetInvalid {
		t.Fatalf("bad target ret=%#x", got)
	}
}

// readKind avoids importing mpu in this file for one constant.
func readKind() mpu.AccessKind { return mpu.AccessRead }
