package kernel

import (
	"fmt"
	"sort"
	"strings"
)

// MethodStat aggregates instrumented cycle counts for one kernel method —
// the raw data behind Figure 11.
type MethodStat struct {
	Count  uint64
	Cycles uint64
}

// Mean returns the average cycles per call.
func (s MethodStat) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Count)
}

// Stats collects per-method cycle counts.
type Stats struct {
	methods map[string]*MethodStat
}

// NewStats returns an empty collector.
func NewStats() *Stats { return &Stats{methods: make(map[string]*MethodStat)} }

// Record adds one timed invocation.
func (s *Stats) Record(method string, cyc uint64) {
	st, ok := s.methods[method]
	if !ok {
		st = &MethodStat{}
		s.methods[method] = st
	}
	st.Count++
	st.Cycles += cyc
}

// Get returns the stat for a method (zero value if never recorded).
func (s *Stats) Get(method string) MethodStat {
	if st, ok := s.methods[method]; ok {
		return *st
	}
	return MethodStat{}
}

// Methods returns the recorded method names, sorted.
func (s *Stats) Methods() []string {
	out := make([]string, 0, len(s.methods))
	for m := range s.methods {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// String renders a Figure 11-style table body.
func (s *Stats) String() string {
	var b strings.Builder
	for _, m := range s.Methods() {
		st := s.Get(m)
		fmt.Fprintf(&b, "%-28s %12.2f cycles (%d calls)\n", m, st.Mean(), st.Count)
	}
	return b.String()
}

// Merge folds another collector's counts into this one.
func (s *Stats) Merge(o *Stats) {
	for m, st := range o.methods {
		cur, ok := s.methods[m]
		if !ok {
			cur = &MethodStat{}
			s.methods[m] = cur
		}
		cur.Count += st.Count
		cur.Cycles += st.Cycles
	}
}
