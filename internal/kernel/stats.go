package kernel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// MethodStat aggregates instrumented cycle counts for one kernel method —
// the raw data behind Figure 11.
type MethodStat struct {
	Count  uint64
	Cycles uint64
}

// Mean returns the average cycles per call.
func (s MethodStat) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Count)
}

// Stats collects per-method cycle counts. All methods are goroutine-safe,
// so parallel campaigns can Merge worker kernels' stats and the tracer's
// counter mirror can be compared against a still-running collector.
type Stats struct {
	mu      sync.Mutex
	methods map[string]*MethodStat
}

// NewStats returns an empty collector.
func NewStats() *Stats { return &Stats{methods: make(map[string]*MethodStat)} }

// Record adds one timed invocation.
func (s *Stats) Record(method string, cyc uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.methods[method]
	if !ok {
		st = &MethodStat{}
		s.methods[method] = st
	}
	st.Count++
	st.Cycles += cyc
}

// Get returns the stat for a method (zero value if never recorded).
func (s *Stats) Get(method string) MethodStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.methods[method]; ok {
		return *st
	}
	return MethodStat{}
}

// Methods returns the recorded method names, sorted.
func (s *Stats) Methods() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.methods))
	for m := range s.methods {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// String renders a Figure 11-style table body.
func (s *Stats) String() string {
	var b strings.Builder
	for _, m := range s.Methods() {
		st := s.Get(m)
		fmt.Fprintf(&b, "%-28s %12.2f cycles (%d calls)\n", m, st.Mean(), st.Count)
	}
	return b.String()
}

// snapshot copies the collector's state under its own lock, so Merge
// never holds two Stats locks at once (no lock-order deadlocks when two
// collectors merge into each other concurrently).
func (s *Stats) snapshot() map[string]MethodStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]MethodStat, len(s.methods))
	for m, st := range s.methods {
		out[m] = *st
	}
	return out
}

// Merge folds another collector's counts into this one.
func (s *Stats) Merge(o *Stats) {
	snap := o.snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	for m, st := range snap {
		cur, ok := s.methods[m]
		if !ok {
			cur = &MethodStat{}
			s.methods[m] = cur
		}
		cur.Count += st.Count
		cur.Cycles += st.Cycles
	}
}
