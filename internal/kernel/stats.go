package kernel

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ticktock/internal/metrics"
)

// MethodStat aggregates instrumented cycle counts for one kernel method —
// the raw data behind Figure 11.
type MethodStat struct {
	Count  uint64
	Cycles uint64
}

// Mean returns the average cycles per call.
func (s MethodStat) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Count)
}

// methodCounters is the per-method pair of sharded atomic counters.
type methodCounters struct {
	count  metrics.Counter
	cycles metrics.Counter
}

// Stats collects per-method cycle counts. Record is the kernel's hottest
// instrumentation call (every setup_mpu, brk and grant passes through
// it), so it runs on sharded atomic counters (metrics.Counter): after a
// method's first recording the path is lock-free and allocation-free —
// no mutex, unlike the original map-under-mutex collector. All methods
// remain goroutine-safe, so parallel campaigns can Merge worker kernels'
// stats and the tracer's counter mirror can be compared against a
// still-running collector.
type Stats struct {
	methods sync.Map // method name -> *methodCounters
}

// NewStats returns an empty collector.
func NewStats() *Stats { return &Stats{} }

// counters returns the method's counter pair, creating it on first use.
func (s *Stats) counters(method string) *methodCounters {
	if v, ok := s.methods.Load(method); ok {
		return v.(*methodCounters)
	}
	v, _ := s.methods.LoadOrStore(method, &methodCounters{})
	return v.(*methodCounters)
}

// Record adds one timed invocation. Lock-free after the method's first
// recording.
func (s *Stats) Record(method string, cyc uint64) {
	mc := s.counters(method)
	mc.count.Inc()
	mc.cycles.Add(cyc)
}

// Get returns the stat for a method (zero value if never recorded).
func (s *Stats) Get(method string) MethodStat {
	v, ok := s.methods.Load(method)
	if !ok {
		return MethodStat{}
	}
	mc := v.(*methodCounters)
	return MethodStat{Count: mc.count.Value(), Cycles: mc.cycles.Value()}
}

// Methods returns the recorded method names, sorted.
func (s *Stats) Methods() []string {
	var out []string
	s.methods.Range(func(k, _ any) bool {
		out = append(out, k.(string))
		return true
	})
	sort.Strings(out)
	return out
}

// String renders a Figure 11-style table body.
func (s *Stats) String() string {
	var b strings.Builder
	for _, m := range s.Methods() {
		st := s.Get(m)
		fmt.Fprintf(&b, "%-28s %12.2f cycles (%d calls)\n", m, st.Mean(), st.Count)
	}
	return b.String()
}

// snapshot copies the collector's state. Reads are atomic per counter,
// so a snapshot taken during a concurrent Record sees each method's
// totals at some point during the call — the same guarantee the old
// mutex gave across Merge.
func (s *Stats) snapshot() map[string]MethodStat {
	out := map[string]MethodStat{}
	s.methods.Range(func(k, v any) bool {
		mc := v.(*methodCounters)
		out[k.(string)] = MethodStat{Count: mc.count.Value(), Cycles: mc.cycles.Value()}
		return true
	})
	return out
}

// Merge folds another collector's counts into this one.
func (s *Stats) Merge(o *Stats) {
	for m, st := range o.snapshot() {
		mc := s.counters(m)
		mc.count.Add(st.Count)
		mc.cycles.Add(st.Cycles)
	}
}

// Publish copies the collector's current totals into a metrics registry
// as `ticktock_method_calls_total` / `ticktock_method_cycles_total`
// counter series, labelled with the kernel flavour — the bridge between
// the Figure 11 collector and the Prometheus exporter. Publish is a
// snapshot, not a live feed: call it when the run (or campaign slice)
// being exported is complete. Nil-safe on the registry.
func (s *Stats) Publish(reg *metrics.Registry, flavour string) {
	if reg == nil {
		return
	}
	for m, st := range s.snapshot() {
		labels := []metrics.Label{metrics.L("flavour", flavour), metrics.L("method", m)}
		reg.Counter("ticktock_method_calls_total", labels...).Add(st.Count)
		reg.Counter("ticktock_method_cycles_total", labels...).Add(st.Cycles)
	}
}
