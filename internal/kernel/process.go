package kernel

import (
	"fmt"

	"ticktock/internal/armv7m"
)

// State is a process lifecycle state.
type State uint8

// Process states.
const (
	// StateReady: runnable.
	StateReady State = iota
	// StateYielded: waiting for an upcall (timer or event).
	StateYielded
	// StateExited: terminated voluntarily.
	StateExited
	// StateFaulted: terminated by the kernel after a fault.
	StateFaulted
	// StateQuarantined: permanently isolated by the kernel after
	// exhausting its restart budget under PolicyQuarantine. A quarantined
	// process is never scheduled again, but the board keeps running —
	// the graceful-degradation terminal state.
	StateQuarantined
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateYielded:
		return "yielded"
	case StateExited:
		return "exited"
	case StateFaulted:
		return "faulted"
	case StateQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Buffer is a user-shared buffer registered via an allow syscall.
type Buffer struct {
	Addr uint32
	Len  uint32
}

// Process is the kernel's per-process record.
type Process struct {
	ID    int
	Name  string
	State State

	// MM owns this process's memory and MPU bookkeeping.
	MM MemoryManager

	// Entry is the program entry point in flash.
	Entry uint32

	// Saved user context: the callee-saved registers the exception
	// frame does not capture, plus the process stack pointer.
	SavedRegs [8]uint32 // r4..r11
	PSP       uint32

	// started reports whether a first exception frame has been built.
	started bool

	// AllowedRO/AllowedRW are the per-driver shared buffers.
	AllowedRO map[uint32]Buffer
	AllowedRW map[uint32]Buffer

	// WakeAt, when non-zero, is the meter cycle count at which a
	// yielded process becomes ready again (alarm driver).
	WakeAt uint64

	// ExitCode is set on voluntary exit.
	ExitCode uint32
	// FaultReason describes why the process was faulted.
	FaultReason string

	// Grants tracks allocated grant bases, newest first.
	Grants []uint32

	// Restarts counts kernel-initiated restarts (fault policy).
	Restarts int

	// consecPreempts counts consecutive full-timeslice preemptions with
	// no intervening syscall — the software watchdog's staleness signal.
	consecPreempts int

	// initialBreak and stackSize are remembered from load time so the
	// restart policy can reset the process.
	initialBreak uint32
	stackSize    uint32

	// alarmGrant is the grant-backed alarm driver state (0 until the
	// first alarm syscall allocates it).
	alarmGrant uint32

	// Upcalls maps driver number to the subscribed callback.
	Upcalls map[uint32]Upcall
	// pendingUpcalls queues scheduled callbacks awaiting a yield.
	pendingUpcalls []ScheduledUpcall
	// inUpcall marks that a callback frame is live on the process
	// stack; yieldPSP is the frame to restore when it returns.
	inUpcall bool
	yieldPSP uint32
	// upcallStub is the address of the injected SVC-return stub.
	upcallStub uint32
}

// Upcall is a subscribed callback: a function pointer in the process's
// flash plus opaque userdata passed back in r3.
type Upcall struct {
	Fn       uint32
	Userdata uint32
}

// ScheduledUpcall is a queued callback delivery with its three arguments.
type ScheduledUpcall struct {
	Driver     uint32
	A0, A1, A2 uint32
}

// Runnable reports whether the scheduler may pick the process.
func (p *Process) Runnable(now uint64) bool {
	switch p.State {
	case StateReady:
		return true
	case StateYielded:
		return p.WakeAt != 0 && now >= p.WakeAt
	default:
		return false
	}
}

// Alive reports whether the process can ever run again.
func (p *Process) Alive() bool {
	return p.State == StateReady || p.State == StateYielded
}

// buildInitialFrame lays a synthetic exception frame on the process stack
// so the first "resume" is indistinguishable from any later one — exactly
// how Tock starts processes. The stack pointer starts at the top of the
// declared stack area and the frame's return address is the entry point.
func (p *Process) buildInitialFrame(m *armv7m.Machine, stackTop uint32) error {
	sp := (stackTop &^ 7) - 32 // 8-byte aligned, room for the 8-word frame
	layout := p.MM.Layout()
	words := [8]uint32{
		layout.MemoryStart, // r0: app arguments, Tock passes memory info
		layout.AppBreak,    // r1
		layout.MemoryEnd(), // r2
		layout.FlashStart,  // r3
		0,                  // r12
		0xFFFF_FFFF,        // lr: trap if the app returns from main
		p.Entry,            // return address = entry point
		0,                  // psr
	}
	for i, w := range words {
		if err := m.Mem.WriteWord(sp+uint32(4*i), w); err != nil {
			return fmt.Errorf("kernel: building initial frame for %s: %w", p.Name, err)
		}
	}
	p.PSP = sp
	p.started = true
	return nil
}
