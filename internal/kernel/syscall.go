package kernel

import (
	"fmt"

	"ticktock/internal/cycles"
	"ticktock/internal/mpu"
	"ticktock/internal/trace"
)

// Syscall classes (the SVC immediate), a compact version of the Tock 2.x
// ABI.
const (
	SVCYield   = 0
	SVCCommand = 1
	SVCAllowRW = 2
	SVCAllowRO = 3
	SVCMemop   = 4
	SVCExit    = 5
	// SVCSubscribe registers an upcall: r0=driver, r1=callback address
	// (must be executable process flash), r2=userdata. A zero callback
	// unsubscribes.
	SVCSubscribe = 6
	// SVCUpcallDone is issued by the injected stub when a callback
	// returns; user code never calls it directly.
	SVCUpcallDone = 7
)

// Driver numbers for the capsule-style drivers the kernel hosts.
const (
	DriverConsole    = 0
	DriverAlarm      = 1
	DriverTemp       = 2
	DriverLED        = 3
	DriverGrant      = 4
	DriverBufferFill = 5
	DriverIPC        = 6
)

// Syscall return codes (subset of Tock's).
const (
	RetSuccess = 0
	RetFail    = 0xFFFF_FFFF
	RetInvalid = 0xFFFF_FFFE
	RetNoMem   = 0xFFFF_FFFD
)

// SVCName returns the human name of a syscall class for trace output.
func SVCName(svcNum uint8) string {
	switch svcNum {
	case SVCYield:
		return "yield"
	case SVCCommand:
		return "command"
	case SVCAllowRW:
		return "allow-rw"
	case SVCAllowRO:
		return "allow-ro"
	case SVCMemop:
		return "memop"
	case SVCExit:
		return "exit"
	case SVCSubscribe:
		return "subscribe"
	case SVCUpcallDone:
		return "upcall-done"
	default:
		return fmt.Sprintf("svc-%d", svcNum)
	}
}

// svcWindows are the precomputed folded-stack window names for each
// syscall class, so the profile hot path never concatenates strings.
var svcWindows = [8]string{
	SVCYield:      "syscall/yield",
	SVCCommand:    "syscall/command",
	SVCAllowRW:    "syscall/allow-rw",
	SVCAllowRO:    "syscall/allow-ro",
	SVCMemop:      "syscall/memop",
	SVCExit:       "syscall/exit",
	SVCSubscribe:  "syscall/subscribe",
	SVCUpcallDone: "syscall/upcall-done",
}

// svcWindow returns the profile window name for a syscall class.
func svcWindow(svcNum uint8) string {
	if int(svcNum) < len(svcWindows) {
		return svcWindows[svcNum]
	}
	return "syscall/" + SVCName(svcNum)
}

// syscallServiceCycles is the flavour-independent cost of servicing a
// syscall inside the kernel — argument unstacking, process-table lookup,
// capability checks and the return path. The paper's measurement hooks
// wrap whole kernel methods, so this constant is charged inside each
// instrumented window on both kernels alike.
const syscallServiceCycles = 100

// Memop operations.
const (
	MemopBrk         = 0
	MemopSbrk        = 1
	MemopMemoryStart = 2
	MemopAppBreak    = 3
	MemopFlashStart  = 4
	MemopFlashSize   = 5
	MemopGrantFree   = 6
)

// handleSyscall reads the stacked frame for arguments, dispatches, and
// writes the return value into the stacked r0 so the process sees it when
// it resumes.
func (k *Kernel) handleSyscall(p *Process, svcNum uint8) error {
	m := k.Board.Machine
	f, err := m.ReadFrame(p.PSP)
	if err != nil {
		return fmt.Errorf("kernel: reading syscall frame of %s: %w", p.Name, err)
	}
	if h := k.Opts.Hooks.SyscallArgs; h != nil {
		a := h(p, svcNum, [4]uint32{f.R0, f.R1, f.R2, f.R3})
		f.R0, f.R1, f.R2, f.R3 = a[0], a[1], a[2], a[3]
	}
	var ret uint32 = RetSuccess
	if k.tracer != nil {
		k.emit(trace.KindSyscallEnter, p, uint64(svcNum), uint64(f.R0), SVCName(svcNum))
		// The exit event pairs with the enter even on the early-return
		// paths (yield delivering an upcall, exit, upcall-done), so
		// Chrome B/E spans always close.
		defer func() { k.emit(trace.KindSyscallExit, p, uint64(svcNum), uint64(ret), SVCName(svcNum)) }()
	}

	switch svcNum {
	case SVCYield:
		// Deliver a queued upcall if one is pending; otherwise park
		// until the wake (Tock's yield-wait) or fall through
		// (yield-no-wait).
		if len(p.pendingUpcalls) > 0 {
			return k.deliverUpcall(p)
		}
		if p.WakeAt != 0 && p.WakeAt > k.Meter().Cycles() {
			p.State = StateYielded
		}

	case SVCSubscribe:
		ret = k.subscribe(p, f.R0, f.R1, f.R2)

	case SVCUpcallDone:
		return k.finishUpcall(p)

	case SVCCommand:
		ret = k.command(p, f.R0, f.R1, f.R2, f.R3)

	case SVCAllowRW:
		ret = k.allow(p, f.R0, f.R1, f.R2, true)

	case SVCAllowRO:
		ret = k.allow(p, f.R0, f.R1, f.R2, false)

	case SVCMemop:
		ret = k.memop(p, f.R0, f.R1)

	case SVCExit:
		p.State = StateExited
		p.ExitCode = f.R0
		return nil

	default:
		ret = RetInvalid
	}

	switch ret {
	case RetFail, RetInvalid, RetNoMem:
		k.SyscallErrors++
	}
	if h := k.Opts.Hooks.SyscallRet; h != nil {
		ret = h(p, svcNum, ret)
	}
	if err := m.WriteFrameR0(p.PSP, ret); err != nil {
		return fmt.Errorf("kernel: writing syscall return for %s: %w", p.Name, err)
	}
	return nil
}

// subscribe registers (or, with a zero callback, removes) a driver
// upcall. The callback pointer is validated to be executable process
// flash — a kernel tricked into jumping elsewhere on the process's behalf
// would be the classic confused-deputy break.
func (k *Kernel) subscribe(p *Process, driver, fn, userdata uint32) uint32 {
	if fn == 0 {
		delete(p.Upcalls, driver)
		return RetSuccess
	}
	if !p.MM.UserCanAccess(fn, 4, mpu.AccessExecute) {
		return RetInvalid
	}
	p.Upcalls[driver] = Upcall{Fn: fn, Userdata: userdata}
	return RetSuccess
}

// scheduleUpcall queues a callback delivery if the process subscribed.
// It reports whether an upcall was queued.
func (k *Kernel) scheduleUpcall(p *Process, driver, a0, a1 uint32) bool {
	if _, ok := p.Upcalls[driver]; !ok {
		return false
	}
	p.pendingUpcalls = append(p.pendingUpcalls, ScheduledUpcall{Driver: driver, A0: a0, A1: a1})
	return true
}

// deliverUpcall pushes a synthetic exception frame for the next queued
// callback below the yield-site frame, so the process resumes inside the
// callback with LR pointing at the injected return stub.
func (k *Kernel) deliverUpcall(p *Process) error {
	up := p.pendingUpcalls[0]
	p.pendingUpcalls = p.pendingUpcalls[1:]
	sub := p.Upcalls[up.Driver]

	m := k.Board.Machine
	p.yieldPSP = p.PSP
	newPSP := (p.PSP - 32) &^ 7
	words := [8]uint32{up.A0, up.A1, up.A2, sub.Userdata, 0, p.upcallStub, sub.Fn, 0}
	for i, w := range words {
		if err := m.Mem.WriteWord(newPSP+uint32(4*i), w); err != nil {
			return fmt.Errorf("kernel: delivering upcall to %s: %w", p.Name, err)
		}
	}
	p.PSP = newPSP
	p.inUpcall = true
	p.State = StateReady
	k.Meter().Add(8 * cycles.Store)
	return nil
}

// finishUpcall handles the stub's SVC: pop the callback frame and resume
// at the yield site.
func (k *Kernel) finishUpcall(p *Process) error {
	if !p.inUpcall {
		// A process invoking the stub directly is misbehaving; treat it
		// like an invalid syscall rather than corrupting the stack.
		return k.Board.Machine.WriteFrameR0(p.PSP, RetInvalid)
	}
	p.inUpcall = false
	p.PSP = p.yieldPSP
	// The yield that triggered delivery completes with success.
	return k.Board.Machine.WriteFrameR0(p.PSP, RetSuccess)
}

// allow registers a shared buffer after validating it against the process
// layout — the instrumented build_readonly_buffer / build_readwrite_buffer
// paths of Figure 11.
func (k *Kernel) allow(p *Process, driver, addr, length uint32, writable bool) uint32 {
	method := "build_readonly_buffer"
	kind := mpu.AccessRead
	if writable {
		method = "build_readwrite_buffer"
		kind = mpu.AccessWrite
	}
	var ret uint32
	_ = k.instrument(method, func() error {
		k.Meter().Add(syscallServiceCycles)
		if length == 0 {
			// A zero-length allow revokes the buffer.
			if writable {
				delete(p.AllowedRW, driver)
			} else {
				delete(p.AllowedRO, driver)
			}
			ret = RetSuccess
			return nil
		}
		if !p.MM.UserCanAccess(addr, length, kind) {
			ret = RetInvalid
			return nil
		}
		if writable {
			p.AllowedRW[driver] = Buffer{Addr: addr, Len: length}
		} else {
			p.AllowedRO[driver] = Buffer{Addr: addr, Len: length}
		}
		ret = RetSuccess
		return nil
	})
	return ret
}

// memop implements the memory-operations syscall.
func (k *Kernel) memop(p *Process, op, arg uint32) uint32 {
	layout := p.MM.Layout()
	switch op {
	case MemopBrk:
		var ret uint32 = RetSuccess
		_ = k.instrument("brk", func() error {
			k.Meter().Add(syscallServiceCycles)
			if err := p.MM.Brk(arg); err != nil {
				ret = RetInvalid
				k.emit(trace.KindBrk, p, uint64(arg), 0, "brk")
				return nil
			}
			k.emit(trace.KindBrk, p, uint64(arg), uint64(p.MM.Layout().AppBreak), "brk")
			return nil
		})
		return ret
	case MemopSbrk:
		var ret uint32
		_ = k.instrument("brk", func() error {
			k.Meter().Add(syscallServiceCycles)
			nb, err := p.MM.Sbrk(int32(arg))
			if err != nil {
				ret = RetInvalid
				k.emit(trace.KindBrk, p, uint64(arg), 0, "sbrk")
				return nil
			}
			ret = nb
			k.emit(trace.KindBrk, p, uint64(arg), uint64(nb), "sbrk")
			return nil
		})
		return ret
	case MemopMemoryStart:
		return layout.MemoryStart
	case MemopAppBreak:
		return layout.AppBreak
	case MemopFlashStart:
		return layout.FlashStart
	case MemopFlashSize:
		return layout.FlashSize
	case MemopGrantFree:
		return layout.UnusedSize()
	default:
		return RetInvalid
	}
}

// command dispatches to the capsule-style drivers.
func (k *Kernel) command(p *Process, driver, cmd, arg2, arg3 uint32) uint32 {
	switch driver {
	case DriverConsole:
		return k.consoleCmd(p, cmd, arg2)
	case DriverAlarm:
		return k.alarmCmd(p, cmd, arg2)
	case DriverTemp:
		if cmd == 0 {
			// Simulated on-die temperature in centi-degrees with
			// cycle-count jitter, as a real sensor read is timing
			// dependent: kernels with different code-path timing
			// report different readings (a §6.1 expected difference).
			return 2200 + uint32(k.Meter().Cycles()%997)
		}
		return RetInvalid
	case DriverLED:
		return k.ledCmd(p, cmd, arg2)
	case DriverGrant:
		return k.grantCmd(p, cmd, arg2)
	case DriverBufferFill:
		return k.bufferFillCmd(p, cmd, arg2)
	case DriverIPC:
		return k.ipcCmd(p, cmd, arg2)
	default:
		return RetInvalid
	}
}

// consoleCmd: cmd 0 writes one character (arg2); cmd 1 prints the
// process's allowed read-only console buffer (length arg2, clamped).
func (k *Kernel) consoleCmd(p *Process, cmd, arg2 uint32) uint32 {
	switch cmd {
	case 0:
		k.appendOutput(p, string(rune(arg2&0x7F)))
		k.Meter().Add(cycles.MMIO)
		return RetSuccess
	case 1:
		buf, ok := p.AllowedRO[DriverConsole]
		if !ok {
			return RetInvalid
		}
		n := min(arg2, buf.Len)
		data, err := k.Board.ReadRAM(buf.Addr, n)
		if err != nil {
			return RetFail
		}
		k.Meter().Add(uint64(n) * cycles.Load)
		k.appendOutput(p, string(data))
		return n
	default:
		return RetInvalid
	}
}

// alarmCmd: cmd 0 reads the current tick counter; cmd 1 arms a relative
// alarm so a following yield blocks until it fires.
//
// The alarm capsule keeps its per-process state in the process's grant
// region, as Tock capsules do: the first alarm syscall allocates an
// 8-byte grant (through the instrumented allocate_grant path) and every
// armed deadline is written there. The grant lives above the kernel
// break, so the process can neither read nor forge its own wake time —
// the isolation property the kernel tests assert.
func (k *Kernel) alarmCmd(p *Process, cmd, arg2 uint32) uint32 {
	switch cmd {
	case 0:
		return uint32(k.Meter().Cycles() >> 6)
	case 1:
		if p.alarmGrant == 0 {
			var addr uint32
			var err error
			_ = k.instrument("allocate_grant", func() error {
				k.Meter().Add(syscallServiceCycles)
				addr, err = p.MM.AllocateGrant(8)
				k.emit(trace.KindGrantAlloc, p, 8, uint64(addr), "alarm")
				return nil
			})
			if err != nil {
				return RetNoMem
			}
			p.Grants = append(p.Grants, addr)
			p.alarmGrant = addr
		}
		wake := k.Meter().Cycles() + uint64(arg2)
		mem := k.Board.Machine.Mem
		if mem.WriteWord(p.alarmGrant, uint32(wake)) != nil ||
			mem.WriteWord(p.alarmGrant+4, uint32(wake>>32)) != nil {
			return RetFail
		}
		k.Meter().Add(2 * cycles.Store)
		p.WakeAt = wake
		return RetSuccess
	default:
		return RetInvalid
	}
}

// alarmGrantState reads the grant-backed deadline back out of process
// memory; exposed for tests asserting the grant is the source of truth.
func (k *Kernel) alarmGrantState(p *Process) (uint64, bool) {
	if p.alarmGrant == 0 {
		return 0, false
	}
	lo, err1 := k.Board.Machine.Mem.ReadWord(p.alarmGrant)
	hi, err2 := k.Board.Machine.Mem.ReadWord(p.alarmGrant + 4)
	if err1 != nil || err2 != nil {
		return 0, false
	}
	return uint64(hi)<<32 | uint64(lo), true
}

// ledCmd: cmd 0 toggles, 1 turns on, 2 turns off LED arg2.
func (k *Kernel) ledCmd(p *Process, cmd, arg2 uint32) uint32 {
	if int(arg2) >= len(k.LEDs) {
		return RetInvalid
	}
	switch cmd {
	case 0:
		k.LEDs[arg2] = !k.LEDs[arg2]
	case 1:
		k.LEDs[arg2] = true
	case 2:
		k.LEDs[arg2] = false
	default:
		return RetInvalid
	}
	k.Meter().Add(cycles.MMIO)
	return RetSuccess
}

// grantCmd: cmd 0 allocates a grant of arg2 bytes on behalf of a capsule —
// the instrumented allocate_grant path of Figure 11.
func (k *Kernel) grantCmd(p *Process, cmd, arg2 uint32) uint32 {
	if cmd != 0 {
		return RetInvalid
	}
	var ret uint32
	_ = k.instrument("allocate_grant", func() error {
		k.Meter().Add(syscallServiceCycles)
		addr, err := p.MM.AllocateGrant(arg2)
		if err != nil {
			ret = RetNoMem
			k.emit(trace.KindGrantAlloc, p, uint64(arg2), 0, "grant")
			return nil
		}
		p.Grants = append(p.Grants, addr)
		ret = RetSuccess
		k.emit(trace.KindGrantAlloc, p, uint64(arg2), uint64(addr), "grant")
		return nil
	})
	return ret
}

// bufferFillCmd: cmd 0 fills the process's allowed read-write buffer with
// the byte in arg2 — a capsule writing into user memory through a checked
// buffer.
func (k *Kernel) bufferFillCmd(p *Process, cmd, arg2 uint32) uint32 {
	if cmd != 0 {
		return RetInvalid
	}
	buf, ok := p.AllowedRW[DriverBufferFill]
	if !ok {
		return RetInvalid
	}
	b := make([]byte, buf.Len)
	for i := range b {
		b[i] = byte(arg2)
	}
	if err := k.Board.Machine.Mem.WriteBytes(buf.Addr, b); err != nil {
		return RetFail
	}
	k.Meter().Add(uint64(buf.Len) * cycles.Store)
	return buf.Len
}

// ipcCmd implements the IPC driver:
//
//	cmd 0: copy this process's read-only IPC buffer into process arg2's
//	       read-write IPC buffer (kernel-mediated copy);
//	cmd 1: share this process's accessible RAM with process arg2 by
//	       mapping an extra MPU region into arg2's configuration —
//	       Tock's hardware-mediated IPC. The client then reads/writes
//	       the service's memory directly, no kernel copies.
//	cmd 2: revoke a mapping previously granted to process arg2.
func (k *Kernel) ipcCmd(p *Process, cmd, arg2 uint32) uint32 {
	switch cmd {
	case 1, 2:
		if int(arg2) >= len(k.Procs) || int(arg2) == p.ID {
			return RetInvalid
		}
		target := k.Procs[arg2]
		if cmd == 2 {
			if err := target.MM.UnshareRegion(); err != nil {
				return RetFail
			}
			return RetSuccess
		}
		layout := p.MM.Layout()
		if err := target.MM.ShareRegion(layout.MemoryStart, layout.AppBreak-layout.MemoryStart, true); err != nil {
			return RetNoMem
		}
		return RetSuccess
	}
	if cmd != 0 {
		return RetInvalid
	}
	src, ok := p.AllowedRO[DriverIPC]
	if !ok {
		return RetInvalid
	}
	if int(arg2) >= len(k.Procs) {
		return RetInvalid
	}
	target := k.Procs[int(arg2)]
	dst, ok := target.AllowedRW[DriverIPC]
	if !ok {
		return RetInvalid
	}
	n := min(src.Len, dst.Len)
	data, err := k.Board.ReadRAM(src.Addr, n)
	if err != nil {
		return RetFail
	}
	if err := k.Board.Machine.Mem.WriteBytes(dst.Addr, data); err != nil {
		return RetFail
	}
	k.ipcSeq++
	k.Meter().Add(uint64(n) * (cycles.Load + cycles.Store))
	return n
}
