package kernel

import (
	"fmt"

	"ticktock/internal/armv7m"
	"ticktock/internal/cycles"
	"ticktock/internal/monolithic"
	"ticktock/internal/mpu"
	"ticktock/internal/verify"
)

// monolithicMM is the Tock-baseline memory manager. It faithfully
// reproduces the structure the paper criticizes:
//
//   - Disagreement: AllocateAppMemRegion discards the computed breaks, so
//     the loader re-derives app_break and kernel_break itself; the kernel's
//     belief can diverge from the subregions actually enabled in hardware.
//   - Redundant work: brk calls setup_mpu even though the regions are
//     reconfigured at the next context switch anyway, and grant allocation
//     re-runs the whole region update; both cost the extra cycles that
//     Figure 11 measures.
//   - Recomputation: buffer validation decodes the accessible span from
//     the raw register values on every call.
type monolithicMM struct {
	drv   *monolithic.MPU
	cfg   monolithic.MpuConfig
	meter *cycles.Meter

	// The kernel's recomputed beliefs about the layout.
	memStart, memSize     uint32
	appBreak, kernelBreak uint32
	flashStart, flashSize uint32
}

// NewMonolithicMM builds the Tock-flavour memory manager.
func NewMonolithicMM(hw *armv7m.MPUHardware, meter *cycles.Meter, bugs monolithic.BugSet) MemoryManager {
	drv := monolithic.New(hw)
	drv.Meter = meter
	drv.Bugs = bugs
	return &monolithicMM{drv: drv, meter: meter}
}

func (m *monolithicMM) Allocate(unallocStart, unallocSize, minSize, appSize, kernelSize, flashStart, flashSize uint32) error {
	start, size, ok := m.drv.AllocateAppMemRegion(unallocStart, unallocSize, minSize, appSize, kernelSize, &m.cfg)
	if !ok {
		return mpu.ErrHeap("monolithic allocation failed")
	}
	if !m.drv.AllocateFlashRegion(flashStart, flashSize, &m.cfg) {
		return mpu.ErrFlash("monolithic flash region failed")
	}
	// The process loader must now redo the carving the driver already
	// did internally (the disagreement problem, §3.2): it only has
	// (start, size), so it recomputes the breaks from scratch.
	m.meter.Add(8 * cycles.ALU)
	m.memStart = start
	m.memSize = size
	m.appBreak = start + appSize // kernel belief; hardware may enable more
	m.kernelBreak = start + size - kernelSize
	m.flashStart = flashStart
	m.flashSize = flashSize
	return nil
}

func (m *monolithicMM) Brk(newBreak uint32) error {
	if err := m.drv.UpdateAppMemRegion(newBreak, m.kernelBreak, &m.cfg); err != nil {
		return err
	}
	m.appBreak = newBreak
	// Tock's brk path includes an unnecessary setup_mpu call (§6.2):
	// the MPU is reprogrammed here even though the next context switch
	// does it again.
	return m.drv.ConfigureMPU(&m.cfg)
}

func (m *monolithicMM) Sbrk(delta int32) (uint32, error) {
	nb := int64(m.appBreak) + int64(delta)
	if nb < 0 || nb > 1<<32-1 {
		return 0, verify.Require(false, "sbrk", "break in address space", "delta=%d", delta)
	}
	if err := m.Brk(uint32(nb)); err != nil {
		return 0, err
	}
	return m.appBreak, nil
}

func (m *monolithicMM) AllocateGrant(size uint32) (uint32, error) {
	m.meter.Add(cycles.Call + 3*cycles.ALU)
	aligned := verify.AlignUp(size, 8)
	if aligned < size {
		return 0, verify.Require(false, "allocate_grant", "size alignable", "size=%d", size)
	}
	if uint64(aligned) >= uint64(m.kernelBreak)-uint64(m.appBreak) {
		return 0, mpu.ErrHeap(fmt.Sprintf("grant of %d bytes does not fit", aligned))
	}
	newKB := m.kernelBreak - aligned
	// Tock re-runs the whole MPU region update when the grant boundary
	// moves — the recomputation TickTock's allocate_grant avoids
	// (Figure 11's −50%).
	if err := m.drv.UpdateAppMemRegion(m.appBreak, newKB, &m.cfg); err != nil {
		return 0, err
	}
	if err := m.drv.ConfigureMPU(&m.cfg); err != nil {
		return 0, err
	}
	m.kernelBreak = newKB
	return newKB, nil
}

func (m *monolithicMM) ConfigureMPU() error { return m.drv.ConfigureMPU(&m.cfg) }

// AccessibleEnd decodes the enabled-subregion end from the registers; it
// may exceed the believed appBreak (disagreement, §3.2).
func (m *monolithicMM) AccessibleEnd() uint32 { return m.cfg.SubregsEnabledEnd() }

// ShareRegion maps the foreign span into MPU region 3, the way Tock's
// monolithic IPC exposes a service's memory to a client.
func (m *monolithicMM) ShareRegion(start, size uint32, writable bool) error {
	if !m.drv.AllocateIPCRegion(start, size, writable, &m.cfg) {
		return mpu.ErrHeap(fmt.Sprintf("ipc span [0x%x,+0x%x) not representable", start, size))
	}
	return m.drv.ConfigureMPU(&m.cfg)
}

// UnshareRegion clears MPU region 3.
func (m *monolithicMM) UnshareRegion() error {
	m.cfg.RBAR[3] = 0
	m.cfg.RASR[3] = 0
	return m.drv.ConfigureMPU(&m.cfg)
}

func (m *monolithicMM) DisableMPU() { m.drv.DisableMPU() }

func (m *monolithicMM) Layout() Layout {
	return Layout{
		MemoryStart: m.memStart,
		MemorySize:  m.memSize,
		AppBreak:    m.appBreak,
		KernelBreak: m.kernelBreak,
		FlashStart:  m.flashStart,
		FlashSize:   m.flashSize,
	}
}

// UserCanAccess decodes the accessible span from the MPU configuration
// registers on every call — a loop over subregion bits, the way Tock's
// buffer validation walks its config. Compare granularMM.UserCanAccess.
func (m *monolithicMM) UserCanAccess(start, size uint32, kind mpu.AccessKind) bool {
	end := uint64(start) + uint64(size)
	switch kind {
	case mpu.AccessExecute:
		m.meter.Add(4 * cycles.ALU)
		return start >= m.flashStart && end <= uint64(m.flashStart)+uint64(m.flashSize)
	case mpu.AccessRead:
		m.meter.Add(4 * cycles.ALU)
		if start >= m.flashStart && end <= uint64(m.flashStart)+uint64(m.flashSize) {
			return true
		}
	case mpu.AccessWrite:
	}
	// Recompute the RAM accessible end from the register bits.
	m.meter.Add(cycles.Call)
	accessEnd := m.cfg.RegionStart
	for i := 0; i < 2; i++ {
		m.meter.Add(2 * cycles.Load)
		if m.cfg.RASR[i]&armv7m.RASREnable == 0 {
			continue
		}
		srd := m.cfg.RASR[i] & armv7m.RASRSRDMask >> armv7m.RASRSRDShift
		for bit := uint32(0); bit < 8; bit++ {
			m.meter.Add(2 * cycles.ALU)
			if srd&(1<<bit) == 0 {
				accessEnd += m.cfg.RegionSize / 8
			}
		}
	}
	// Clamp the hardware span to the kernel's believed break: Tock must
	// take the min of the two views or risk handing out grant memory.
	limit := min(accessEnd, m.appBreak)
	m.meter.Add(2 * cycles.ALU)
	return start >= m.memStart && end <= uint64(limit)
}
