package membench

import (
	"strings"
	"testing"

	"ticktock/internal/verify"
)

func TestRunAllShapes(t *testing.T) {
	rows, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	tt, tk, padded := rows[0], rows[1], rows[2]
	t.Logf("\n%s", Table(rows))

	// Paper §6.2 shapes:
	// 1. Tock's block is a power of two; TickTock's is not (exact-fit).
	if !verify.IsPow2(tk.Total) {
		t.Fatalf("Tock total %d not a power of two", tk.Total)
	}
	// 2. TickTock allocates less total memory than Tock.
	if tt.Total >= tk.Total {
		t.Fatalf("TickTock total %d not below Tock total %d", tt.Total, tk.Total)
	}
	// 3. Grant regions are (nearly) equal — same hint on both.
	if tt.Grant != tk.Grant {
		t.Fatalf("grants differ: %d vs %d", tt.Grant, tk.Grant)
	}
	// 4. Tock ends with more accessible memory (its pow2 block leaves
	//    more room below the grant), but more total too.
	if tk.Accessible <= tt.Accessible {
		t.Fatalf("accessible: tock %d <= ticktock %d", tk.Accessible, tt.Accessible)
	}
	// 5. TickTock's unused percentage is slightly higher (paper: 5.60%%
	//    vs 3.08%%); padding closes the absolute gap.
	if tt.UnusedPct() <= tk.UnusedPct() {
		t.Fatalf("unused%%: ticktock %.2f <= tock %.2f", tt.UnusedPct(), tk.UnusedPct())
	}
	// 6. The padded run matches Tock's total and lands within ~100 bytes
	//    of Tock's unused figure (paper: within 84 bytes).
	if padded.Total != tk.Total {
		t.Fatalf("padded total %d != tock %d", padded.Total, tk.Total)
	}
	gap := int64(padded.Unused) - int64(tk.Unused)
	if gap < 0 {
		gap = -gap
	}
	if gap > 150 {
		t.Fatalf("padded unused gap %d too large", gap)
	}
	// 7. Growth behaviour differs structurally: TickTock's break snaps
	//    to the hardware subregion granularity (few large jumps), while
	//    Tock tracks its believed break byte by byte.
	if tt.GrowthOps == 0 || tk.GrowthOps == 0 {
		t.Fatalf("no growth: %d / %d", tt.GrowthOps, tk.GrowthOps)
	}
	if tk.GrowthOps <= tt.GrowthOps {
		t.Fatalf("expected Tock byte-stepping (%d) to exceed TickTock snapping (%d)", tk.GrowthOps, tt.GrowthOps)
	}
}

func TestAccessibleCoversAllGrownBytes(t *testing.T) {
	// Every successful 1-byte growth must land within the hardware
	// accessible span at the end.
	for _, fl := range []struct {
		name string
		r    Result
	}{} {
		_ = fl
	}
	rows, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Accessible < InitRAM {
			t.Fatalf("%s: accessible %d below initial %d", r.Kernel, r.Accessible, InitRAM)
		}
		if r.Total != r.Accessible+r.Grant+r.Unused {
			t.Fatalf("%s: footprint does not decompose: %d != %d+%d+%d",
				r.Kernel, r.Total, r.Accessible, r.Grant, r.Unused)
		}
	}
}

func TestTableFormat(t *testing.T) {
	rows, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	tab := Table(rows)
	for _, want := range []string{"TickTock", "Tock", "TickTock(padded)", "unused%"} {
		if !strings.Contains(tab, want) {
			t.Fatalf("table missing %q:\n%s", want, tab)
		}
	}
}

func TestRISCVFootprints(t *testing.T) {
	rows, err := RunAllRISCV()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		t.Logf("%s: total=%d accessible=%d grant=%d unused=%d", r.Chip, r.Total, r.Accessible, r.Grant, r.Unused)
		if r.Total != r.Accessible+r.Grant+r.Unused {
			t.Fatalf("%s: footprint does not decompose", r.Chip)
		}
		if r.GrowthOps == 0 {
			t.Fatalf("%s: no growth", r.Chip)
		}
	}
	// TOR chips are byte-flexible: near-zero waste (only the break
	// slack); arm-style subregion waste does not exist here.
	for _, r := range rows {
		if r.Chip == "fe310-g002" || r.Chip == "litex-vexriscv" {
			if r.Unused > 64 {
				t.Fatalf("%s: TOR chip wastes %d bytes", r.Chip, r.Unused)
			}
		}
	}
}
