// Package membench implements the paper's §6.2 memory microbenchmark: an
// application that grows its memory one byte at a time until failure, on
// both kernel flavours, reporting the final footprint — total block size,
// user-accessible (stack + data + heap) bytes, kernel grant bytes, and
// unused bytes. A third run configures TickTock with padding so its total
// matches Tock's, reproducing the paper's padded comparison.
package membench

import (
	"fmt"
	"strings"

	"ticktock/internal/armv7m"
	"ticktock/internal/core"
	"ticktock/internal/kernel"
	"ticktock/internal/monolithic"
	"ticktock/internal/riscv"
)

// Workload parameters, chosen to mirror the paper's test app: ~7.8 KiB of
// declared need with a ~1.2 KiB grant hint.
const (
	MinRAM     = 7780
	InitRAM    = 2048
	KernelHint = 1200
	poolStart  = 0x2000_1000
	poolSize   = 0x0002_0000
	flashBase  = 0x0008_0000
	flashSize  = 0x1000
)

// Result is one row of the microbenchmark.
type Result struct {
	Kernel     string
	Total      uint32 // process memory block size
	Accessible uint32 // hardware-enforced stack+data+heap bytes
	Grant      uint32 // kernel-owned grant bytes
	Unused     uint32 // gap between accessible end and grant start
	GrowthOps  int    // successful 1-byte growths before failure
}

// UnusedPct returns unused memory as a percentage of the total.
func (r Result) UnusedPct() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Unused) / float64(r.Total)
}

// newMM constructs a memory manager of the requested flavour over fresh
// hardware.
func newMM(fl kernel.Flavour, padding uint32) kernel.MemoryManager {
	hw := armv7m.NewMPUHardware()
	if fl == kernel.FlavourTock {
		return kernel.NewMonolithicMM(hw, nil, monolithic.BugSet{})
	}
	return kernel.NewGranularMM(hw, nil, padding)
}

// Run grows a process's memory byte by byte until the kernel refuses, and
// reports the final footprint.
func Run(fl kernel.Flavour, padding uint32) (Result, error) {
	mm := newMM(fl, padding)
	if err := mm.Allocate(poolStart, poolSize, MinRAM, InitRAM, KernelHint, flashBase, flashSize); err != nil {
		return Result{}, fmt.Errorf("membench: allocate on %s: %w", fl, err)
	}
	ops := 0
	for {
		if _, err := mm.Sbrk(1); err != nil {
			break
		}
		ops++
		if ops > 1<<20 {
			return Result{}, fmt.Errorf("membench: growth never failed")
		}
	}
	l := mm.Layout()
	access := mm.AccessibleEnd() - l.MemoryStart
	name := "TickTock"
	if fl == kernel.FlavourTock {
		name = "Tock"
	} else if padding > 0 {
		name = "TickTock(padded)"
	}
	return Result{
		Kernel:     name,
		Total:      l.MemorySize,
		Accessible: access,
		Grant:      l.GrantSize(),
		Unused:     l.MemorySize - access - l.GrantSize(),
		GrowthOps:  ops,
	}, nil
}

// RunAll produces the three paper rows: TickTock, Tock, and TickTock
// padded to Tock's total.
func RunAll() ([]Result, error) {
	tt, err := Run(kernel.FlavourTickTock, 0)
	if err != nil {
		return nil, err
	}
	tk, err := Run(kernel.FlavourTock, 0)
	if err != nil {
		return nil, err
	}
	out := []Result{tt, tk}
	if tk.Total > tt.Total {
		padded, err := Run(kernel.FlavourTickTock, tk.Total-tt.Total)
		if err != nil {
			return nil, err
		}
		out = append(out, padded)
	}
	return out, nil
}

// Table renders the results.
func Table(rows []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %12s %8s %8s %8s\n", "kernel", "total", "accessible", "grant", "unused", "unused%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %8d %12d %8d %8d %7.2f%%\n",
			r.Kernel, r.Total, r.Accessible, r.Grant, r.Unused, r.UnusedPct())
	}
	return b.String()
}

// RISCVResult extends the microbenchmark to the RISC-V chips: the PMP's
// byte-granular (TOR) regions allocate to exact need, while the NAPOT-only
// chip pays power-of-two alignment — the same axis of hardware variability
// the §6.2 comparison explores between Tock and TickTock on ARM.
type RISCVResult struct {
	Chip string
	Result
}

// RunRISCV grows a process byte by byte on one RISC-V chip.
func RunRISCV(chip riscv.ChipConfig) (RISCVResult, error) {
	drv := core.NewPMPMPU(riscv.NewPMP(chip))
	alloc := core.NewAllocator[core.PMPRegion](drv, core.Config{})
	if err := alloc.AllocateAppMemory(0x8000_1000, 0x2_0000, MinRAM, InitRAM, KernelHint, 0x2000_0000, 0x1000); err != nil {
		return RISCVResult{}, fmt.Errorf("membench: %s: %w", chip.Name, err)
	}
	ops := 0
	for {
		if _, err := alloc.Sbrk(1); err != nil {
			break
		}
		ops++
		if ops > 1<<20 {
			return RISCVResult{}, fmt.Errorf("membench: growth never failed on %s", chip.Name)
		}
	}
	b := alloc.Breaks()
	access := b.AppBreak() - b.MemoryStart()
	return RISCVResult{
		Chip: chip.Name,
		Result: Result{
			Kernel:     "TickTock/" + chip.Name,
			Total:      b.MemorySize(),
			Accessible: access,
			Grant:      b.GrantSize(),
			Unused:     b.MemorySize() - access - b.GrantSize(),
			GrowthOps:  ops,
		},
	}, nil
}

// RunAllRISCV runs the microbenchmark on every supported chip.
func RunAllRISCV() ([]RISCVResult, error) {
	var out []RISCVResult
	for _, chip := range riscv.Chips {
		r, err := RunRISCV(chip)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
