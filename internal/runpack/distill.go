package runpack

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"ticktock/internal/difftest"
	"ticktock/internal/faultinject"
	"ticktock/internal/flightrec"
	"ticktock/internal/kernel"
	"ticktock/internal/monolithic"
)

// KindRegress marks a distilled regression pack: the minimal standing
// evidence of a once-observed divergence or violation, replayed by
// regress_test in CI forever after.
const KindRegress = "regress"

// RegressName is the result member of a regression pack.
const RegressName = "regress.json"

// RegressSchema versions the regress.json shape.
const RegressSchema = 1

// DivergenceView is the JSON rendering of a flightrec.Divergence.
type DivergenceView struct {
	Index  int    `json:"index"`
	CycleA uint64 `json:"cycle_a"`
	CycleB uint64 `json:"cycle_b"`
	Field  string `json:"field"`
	A      uint64 `json:"a"`
	B      uint64 `json:"b"`
	Steps  int    `json:"steps"`
}

// Regress is the regress.json result member of a regression pack: which
// run the evidence was distilled from, the invariant the pack stands
// for, and the bisected first divergence. The recording slices carry the
// expected post-state via their manifest ReplayDigests.
type Regress struct {
	Schema int `json:"schema"`
	// Source is "difftest" or "faultcamp".
	Source string `json:"source"`
	// Case and Bug identify a difftest distillation: the release-test
	// case, and the seeded baseline bug (if any) the divergence was
	// observed under.
	Case string `json:"case,omitempty"`
	Bug  string `json:"bug,omitempty"`
	// Seed, N and Scenario identify a faultcamp distillation: the
	// campaign coordinates of the offending scenario.
	Seed          int64  `json:"seed,omitempty"`
	N             int    `json:"n,omitempty"`
	Scenario      int    `json:"scenario,omitempty"`
	ScenarioLabel string `json:"scenario_label,omitempty"`
	// Invariant is what CheckRegression re-asserts on current code:
	// "row-ok" (the case matches its expectation) or "no-violations"
	// (the scenario's isolation sweep stays clean).
	Invariant string `json:"invariant"`
	// Compare names the bisected pair: "cross-flavour" (TickTock vs
	// Tock under the same config) or "clean-vs-buggy" (same flavour,
	// with and without the seeded bug — used when the bug collapses a
	// legitimate flavour difference instead of creating one).
	Compare string `json:"compare,omitempty"`
	// Divergence is the bisected first divergent snapshot between the
	// two recorded timelines (nil when the behavioural fields never
	// diverge at snapshot granularity).
	Divergence *DivergenceView `json:"divergence,omitempty"`
	// Violations are the isolation-sweep findings (faultcamp source).
	Violations []string `json:"violations,omitempty"`
}

// Invariant values.
const (
	InvariantRowOK        = "row-ok"
	InvariantNoViolations = "no-violations"
)

func divergenceView(d *flightrec.Divergence) *DivergenceView {
	if d == nil {
		return nil
	}
	return &DivergenceView{
		Index: d.Index, CycleA: d.CycleA, CycleB: d.CycleB,
		Field: d.Field, A: d.A, B: d.B, Steps: d.Steps,
	}
}

// sliceRecording distills a recording down to the two snapshots that
// matter: a synthesized keyframe holding the complete state just before
// idx, and the original delta snapshot at idx — plus the trace-event
// window covering both. Replaying the slice to its end reproduces the
// exact state the full recording had at idx, at a fraction of the bytes.
func sliceRecording(rec *flightrec.Recording, idx int) (*flightrec.Recording, error) {
	if len(rec.Snapshots) == 0 {
		return nil, fmt.Errorf("runpack: cannot slice an empty recording")
	}
	if idx < 0 {
		idx = 0
	}
	if idx >= len(rec.Snapshots) {
		idx = len(rec.Snapshots) - 1
	}
	pre := idx - 1
	if pre < 0 {
		pre = 0
	}
	s, err := rec.ReplayAt(pre)
	if err != nil {
		return nil, fmt.Errorf("runpack: slicing %s at %d: %w", rec.Port, idx, err)
	}
	out := &flightrec.Recording{Port: rec.Port, PageSize: rec.PageSize}
	key := flightrec.Snapshot{
		Index:    0,
		Cycle:    rec.Snapshots[pre].Cycle,
		EventSeq: rec.Snapshots[pre].EventSeq,
		Label:    rec.Snapshots[pre].Label,
		Keyframe: true,
		Fields:   s.Fields(),
	}
	for _, base := range s.PageBases() {
		key.Pages = append(key.Pages, flightrec.Page{Base: base, Data: s.Page(base)})
	}
	out.Snapshots = append(out.Snapshots, key)
	if idx > pre {
		orig := rec.Snapshots[idx]
		out.Snapshots = append(out.Snapshots, flightrec.Snapshot{
			Index:    1,
			Cycle:    orig.Cycle,
			EventSeq: orig.EventSeq,
			Label:    orig.Label,
			Fields:   orig.Fields,
			Pages:    orig.Pages,
		})
	}
	// Keep the events whose per-snapshot windows the slice can still
	// serve: everything from the window before the keyframe through the
	// last kept snapshot.
	var from uint64
	if pre > 0 {
		from = rec.Snapshots[pre-1].EventSeq
	}
	to := rec.Snapshots[idx].EventSeq
	for _, e := range rec.Events {
		if e.Seq >= from && e.Seq < to {
			out.Events = append(out.Events, e)
		}
	}
	return out, nil
}

// deriveDifftestRegress re-runs a release-test case under the flight
// recorder (with the named baseline bug seeded, if any), bisects two
// timelines to the first divergent snapshot, and returns the regress
// record plus the two minimal recording slices. The bisected pair
// adapts to the divergence shape: when the two flavours disagree, the
// cross-flavour pair localizes where; when the bug instead *collapsed*
// a legitimate flavour difference (the flavours unexpectedly agree),
// the clean-vs-buggy pair on the TickTock flavour localizes where the
// bug first bent the machine. Pure function of (caseName, bug) — the
// regress executor re-derives it byte-identically.
func deriveDifftestRegress(caseName, bug string) (*Regress, map[string]*flightrec.Recording, error) {
	tc, err := findCase(caseName)
	if err != nil {
		return nil, nil, err
	}
	cfg := difftest.Config{NoTraceDump: true}
	if bug != "" {
		if cfg.Bugs, err = ParseBug(bug); err != nil {
			return nil, nil, err
		}
	}
	_, ttRec, err := difftest.RunRecorded(tc, kernel.FlavourTickTock, cfg)
	if err != nil {
		return nil, nil, err
	}
	_, tkRec, err := difftest.RunRecorded(tc, kernel.FlavourTock, cfg)
	if err != nil {
		return nil, nil, err
	}
	div, err := flightrec.Bisect(ttRec, tkRec, difftest.CrossFlavourIgnore)
	if err != nil {
		return nil, nil, fmt.Errorf("runpack: bisecting %s: %w", caseName, err)
	}
	r := &Regress{
		Schema:    RegressSchema,
		Source:    KindDifftest,
		Case:      caseName,
		Bug:       bug,
		Invariant: InvariantRowOK,
	}
	a, b := ttRec, tkRec
	aName, bName := "slice-ticktock.ttfr", "slice-tock.ttfr"
	r.Compare = "cross-flavour"
	if div == nil && bug != "" {
		// The flavours agree under the bug — compare the buggy TickTock
		// run against its clean twin instead.
		_, cleanRec, err := difftest.RunRecorded(tc, kernel.FlavourTickTock, difftest.Config{NoTraceDump: true})
		if err != nil {
			return nil, nil, err
		}
		div, err = flightrec.Bisect(cleanRec, ttRec, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("runpack: bisecting %s clean-vs-buggy: %w", caseName, err)
		}
		a, b = cleanRec, ttRec
		aName, bName = "slice-clean.ttfr", "slice-buggy.ttfr"
		r.Compare = "clean-vs-buggy"
	}
	r.Divergence = divergenceView(div)
	idx := len(a.Snapshots) - 1
	if div != nil {
		idx = div.Index
	}
	aSlice, err := sliceRecording(a, idx)
	if err != nil {
		return nil, nil, err
	}
	bSlice, err := sliceRecording(b, idx)
	if err != nil {
		return nil, nil, err
	}
	slices := map[string]*flightrec.Recording{aName: aSlice, bName: bSlice}
	return r, slices, nil
}

// deriveFaultcampRegress re-runs one campaign scenario, re-records its
// clean and injected timelines on both ports, and bisects clean vs
// injected per port to localize where the injected fault first bent the
// machine. Pure function of (seed, n, scenario).
func deriveFaultcampRegress(seed int64, n, scenario int) (*Regress, map[string]*flightrec.Recording, error) {
	cfg := faultinject.Config{Seed: seed, N: n}
	scs := faultinject.GenScenarios(cfg)
	if scenario < 0 || scenario >= len(scs) {
		return nil, nil, fmt.Errorf("runpack: scenario %d out of range [0,%d)", scenario, len(scs))
	}
	sc := scs[scenario]
	res := faultinject.RunScenario(sc, cfg)
	if res.ARM.Err != "" || res.RV.Err != "" {
		return nil, nil, fmt.Errorf("runpack: scenario %s errored: arm=%q rv=%q", sc.Label(), res.ARM.Err, res.RV.Err)
	}
	cleanARM, cleanRV, err := faultinject.RecordRuns(sc, cfg, false)
	if err != nil {
		return nil, nil, err
	}
	injARM, injRV, err := faultinject.RecordRuns(sc, cfg, true)
	if err != nil {
		return nil, nil, err
	}
	// Bisect clean vs injected on the ARM port (same port, so every
	// field is comparable); fall back to the RISC-V pair when the ARM
	// injection was masked or skipped.
	div, err := flightrec.Bisect(cleanARM, injARM, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("runpack: bisecting %s (arm): %w", sc.Label(), err)
	}
	armIdx := len(injARM.Snapshots) - 1
	if div != nil {
		armIdx = div.Index
	}
	rvDiv, err := flightrec.Bisect(cleanRV, injRV, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("runpack: bisecting %s (rv): %w", sc.Label(), err)
	}
	rvIdx := len(injRV.Snapshots) - 1
	if rvDiv != nil {
		rvIdx = rvDiv.Index
	}
	if div == nil {
		div = rvDiv
	}
	armSlice, err := sliceRecording(injARM, armIdx)
	if err != nil {
		return nil, nil, err
	}
	rvSlice, err := sliceRecording(injRV, rvIdx)
	if err != nil {
		return nil, nil, err
	}
	violations := append(append([]string{}, res.ARM.Violations...), res.RV.Violations...)
	r := &Regress{
		Schema:        RegressSchema,
		Source:        KindFaultcamp,
		Seed:          seed,
		N:             n,
		Scenario:      scenario,
		ScenarioLabel: sc.Label(),
		Invariant:     InvariantNoViolations,
		Divergence:    divergenceView(div),
		Violations:    violations,
	}
	slices := map[string]*flightrec.Recording{
		"slice-arm.ttfr": armSlice,
		"slice-rv.ttfr":  rvSlice,
	}
	return r, slices, nil
}

// regressBytes renders the canonical regress.json encoding.
func regressBytes(r *Regress) ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// sealRegress packages a derived regression into a content-addressed
// pack under root.
func sealRegress(root, command string, r *Regress, slices map[string]*flightrec.Recording) (dir, receipt string, err error) {
	data, err := regressBytes(r)
	if err != nil {
		return "", "", err
	}
	b := NewBuilder(KindRegress, command, r)
	b.AddFile(RegressName, data)
	b.SetResult(RegressName)
	for name, rec := range slices {
		b.AddRecording(name, rec)
	}
	return b.Seal(root)
}

// DistillCase distills a difftest divergence into a regression pack
// under root: the case is re-run on both flavours under the flight
// recorder, bisected to the first behavioural divergence, and the two
// minimal recording slices plus the regress record are sealed into a
// content-addressed pack. bugs names the seeded baseline bug the
// divergence was observed under (zero for none).
func DistillCase(root, caseName string, bugs monolithic.BugSet) (dir, receipt string, err error) {
	bug := bugName(difftest.Config{Bugs: bugs})
	r, slices, err := deriveDifftestRegress(caseName, bug)
	if err != nil {
		return "", "", err
	}
	cmd := "regress -case " + caseName
	if bug != "" {
		cmd += " -bug " + bug
	}
	return sealRegress(root, cmd, r, slices)
}

// DistillScenario distills a campaign scenario (typically one whose
// isolation sweep found violations) into a regression pack under root:
// clean and injected runs are re-recorded on both ports, bisected to
// where the fault first bent the machine, and the injected runs' minimal
// slices are sealed with the regress record.
func DistillScenario(root string, cfg faultinject.Config, scenario int) (dir, receipt string, err error) {
	if cfg.N == 0 {
		cfg.N = faultinject.DefaultScenarios
	}
	r, slices, err := deriveFaultcampRegress(cfg.Seed, cfg.N, scenario)
	if err != nil {
		return "", "", err
	}
	cmd := fmt.Sprintf("regress -seed %d -n %d -scenario %d", cfg.Seed, cfg.N, scenario)
	return sealRegress(root, cmd, r, slices)
}

// RegressOptions tunes CheckRegression. The zero value checks the
// invariant against current code; Bugs re-seeds a baseline bug to
// simulate the pre-fix code (how the tests prove a pack fails before
// its fix and passes after).
type RegressOptions struct {
	Bugs monolithic.BugSet
}

// ReadRegress loads the regress record of a regression pack.
func ReadRegress(dir string) (*Regress, error) {
	m, _, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	if m.Kind != KindRegress {
		return nil, fmt.Errorf("runpack: %s is a %s pack, not a regression", dir, m.Kind)
	}
	raw, err := os.ReadFile(filepath.Join(dir, m.Result))
	if err != nil {
		return nil, err
	}
	var r Regress
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("runpack: %s: %w", dir, err)
	}
	if r.Schema != RegressSchema {
		return nil, fmt.Errorf("runpack: %s: regress schema %d, want %d", dir, r.Schema, RegressSchema)
	}
	return &r, nil
}

// CheckRegression replays one regression pack: the pack's integrity
// chain is verified (digests, recording slices re-replayed to their
// pinned post-states), then the distilled invariant is re-asserted
// against current code — the case must match its expectation, or the
// scenario's isolation sweep must stay clean. A non-nil error means the
// once-fixed bug is back (or the pack is damaged).
func CheckRegression(dir string, opts RegressOptions) error {
	if err := Verify(dir, VerifyOptions{}); err != nil {
		return err
	}
	r, err := ReadRegress(dir)
	if err != nil {
		return err
	}
	switch r.Source {
	case KindDifftest:
		tc, err := findCase(r.Case)
		if err != nil {
			return err
		}
		row := difftest.RunCaseConfig(tc, difftest.Config{Bugs: opts.Bugs, NoTraceDump: true})
		if row.Err != nil {
			return fmt.Errorf("runpack: %s: re-running case %s: %w", dir, r.Case, row.Err)
		}
		if !row.OK() {
			return fmt.Errorf("runpack: %s: REGRESSION: case %s diverges again (equal=%v expect-diff=%v) — distilled from bug %q",
				dir, r.Case, row.Equal, row.ExpectDiff, r.Bug)
		}
	case KindFaultcamp:
		cfg := faultinject.Config{Seed: r.Seed, N: r.N}
		scs := faultinject.GenScenarios(cfg)
		if r.Scenario < 0 || r.Scenario >= len(scs) {
			return fmt.Errorf("runpack: %s: scenario %d out of range", dir, r.Scenario)
		}
		res := faultinject.RunScenario(scs[r.Scenario], cfg)
		if res.ARM.Err != "" || res.RV.Err != "" {
			return fmt.Errorf("runpack: %s: re-running %s: arm=%q rv=%q", dir, r.ScenarioLabel, res.ARM.Err, res.RV.Err)
		}
		if n := len(res.ARM.Violations) + len(res.RV.Violations); n > 0 {
			return fmt.Errorf("runpack: %s: REGRESSION: scenario %s violates isolation again (%d violations)",
				dir, r.ScenarioLabel, n)
		}
	default:
		return fmt.Errorf("runpack: %s: unknown regress source %q", dir, r.Source)
	}
	return nil
}

// executeRegress re-derives a regression pack's regress.json from its
// receipt command.
func executeRegress(args []string) ([]byte, error) {
	var caseName, bug string
	var seed int64
	var n, scenario int
	scenario = -1
	if err := parseFlags(args, map[string]func(string) error{
		"-case":     func(v string) error { caseName = v; return nil },
		"-bug":      func(v string) error { bug = v; return nil },
		"-seed":     func(v string) (err error) { seed, err = strconv.ParseInt(v, 10, 64); return },
		"-n":        func(v string) (err error) { n, err = strconv.Atoi(v); return },
		"-scenario": func(v string) (err error) { scenario, err = strconv.Atoi(v); return },
	}); err != nil {
		return nil, err
	}
	var r *Regress
	var err error
	switch {
	case caseName != "":
		r, _, err = deriveDifftestRegress(caseName, bug)
	case scenario >= 0:
		r, _, err = deriveFaultcampRegress(seed, n, scenario)
	default:
		return nil, fmt.Errorf("runpack: regress command needs -case or -scenario")
	}
	if err != nil {
		return nil, err
	}
	return regressBytes(r)
}

func init() {
	executors[KindRegress] = executeRegress
}
