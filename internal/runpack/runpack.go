// Package runpack gives every campaign, difftest and replay run a
// verifiable provenance trail: a content-addressed artifact directory
// whose manifest carries sha256 digests over everything the run
// produced — TTFR flight recordings, the trace export, the metrics
// snapshot, the seed/config and the result rows — plus a one-line
// receipt holding the exact command that re-derives the result.
//
// The design mirrors what an auditable spec-to-binary pipeline needs:
//
//  1. Content addressing. The pack directory is named by the sha256 of
//     its manifest, and the manifest digests every member file, so a
//     pack cannot drift silently: `runpack verify` recomputes the whole
//     chain and fails non-zero on a single flipped byte anywhere.
//  2. Re-derivation. The simulated boards are deterministic, so the
//     recording *is* the run. Verification replays every recorded
//     timeline back to its final state and compares the re-derived
//     state digest against the manifest; with -rerun it also executes
//     the receipt's command in-process and compares the result bytes.
//  3. Auto-distillation (distill.go). Any campaign violation or
//     difftest divergence is bisected to its first divergent snapshot
//     and distilled into a minimal standing regression — recording
//     slice plus expected post-state — replayed by regress_test in CI,
//     so bugs found at scale become permanent tests with zero human
//     effort.
//
// Everything a pack contains is byte-deterministic: identical runs
// produce identical directories with identical names.
package runpack

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ticktock/internal/flightrec"
)

// ManifestName and ReceiptName are the two reserved pack members. The
// manifest digests every other member; the receipt names the manifest,
// so it cannot itself be covered by it.
const (
	ManifestName = "MANIFEST.json"
	ReceiptName  = "RECEIPT"
)

// SchemaVersion is the manifest schema. Bump on any field change.
const SchemaVersion = 1

// Kinds of runs a pack can capture.
const (
	KindFaultcamp = "faultcamp"
	KindDifftest  = "difftest"
	KindReplay    = "replay"
)

// ReplayDigest is the re-derivable part of a recording: decode the
// .ttfr member, replay to the final snapshot, and these values must
// come back. It is how `verify` proves the result still follows from
// the recording, independent of the byte digest.
type ReplayDigest struct {
	Snapshots  int    `json:"snapshots"`
	FinalCycle uint64 `json:"final_cycle"`
	// StateDigest hashes the replayed final state: every field in
	// capture order plus the reconstructed memory image.
	StateDigest string `json:"state_digest"`
}

// FileEntry is one manifest-covered pack member.
type FileEntry struct {
	Name   string `json:"name"`
	Size   int64  `json:"size"`
	SHA256 string `json:"sha256"`
	// Replay is set for .ttfr members: the expected outcome of
	// re-deriving the final state from the recording.
	Replay *ReplayDigest `json:"replay,omitempty"`
}

// Manifest is the pack's integrity root, serialized as canonical JSON.
type Manifest struct {
	Schema int    `json:"schema"`
	Kind   string `json:"kind"`
	// Command is the exact in-process replay command (also mirrored in
	// the receipt): executing it must re-produce the result file byte
	// for byte.
	Command string `json:"command"`
	// Result names the member holding the run's canonical result and
	// its digest, duplicated here so the receipt can assert it without
	// re-reading the member list.
	Result       string      `json:"result"`
	ResultSHA256 string      `json:"result_sha256"`
	Config       any         `json:"config"`
	Files        []FileEntry `json:"files"`
}

// StateDigest hashes a replayed state — the comparison target for
// ReplayDigest.StateDigest. FNV-64a over the field list in capture
// order and the memory digest, rendered as hex.
func StateDigest(s *flightrec.State) string {
	h := fnv.New64a()
	for _, f := range s.Fields() {
		fmt.Fprintf(h, "%s=%d;", f.Name, f.Val)
	}
	fmt.Fprintf(h, "mem=%d;cycle=%d", s.MemDigest(), s.Cycle)
	return fmt.Sprintf("%016x", h.Sum64())
}

// recordingDigest decodes nothing — it replays an in-memory recording
// to its final snapshot and summarizes it.
func recordingDigest(rec *flightrec.Recording) (*ReplayDigest, error) {
	if len(rec.Snapshots) == 0 {
		return &ReplayDigest{}, nil
	}
	s, err := rec.ReplayAt(len(rec.Snapshots) - 1)
	if err != nil {
		return nil, err
	}
	return &ReplayDigest{
		Snapshots:   len(rec.Snapshots),
		FinalCycle:  rec.FinalCycle(),
		StateDigest: StateDigest(s),
	}, nil
}

// sha256Hex digests a byte string.
func sha256Hex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Builder accumulates pack members in memory, then Seal writes the
// content-addressed directory in one pass.
type Builder struct {
	kind    string
	command string
	config  any
	result  string
	files   map[string][]byte
	replays map[string]*ReplayDigest
	err     error
}

// NewBuilder starts a pack of the given kind. command is the exact
// in-process replay command for the receipt; config is the run's full
// configuration (marshalled into the manifest).
func NewBuilder(kind, command string, config any) *Builder {
	return &Builder{
		kind:    kind,
		command: command,
		config:  config,
		files:   make(map[string][]byte),
		replays: make(map[string]*ReplayDigest),
	}
}

// AddFile adds one member. Reserved names and duplicates are errors
// (reported by Seal, so call sites can chain).
func (b *Builder) AddFile(name string, data []byte) {
	if b.err != nil {
		return
	}
	if name == ManifestName || name == ReceiptName {
		b.err = fmt.Errorf("runpack: member name %s is reserved", name)
		return
	}
	if strings.Contains(name, "/") || strings.Contains(name, "..") {
		b.err = fmt.Errorf("runpack: member name %q must be a plain file name", name)
		return
	}
	if _, dup := b.files[name]; dup {
		b.err = fmt.Errorf("runpack: duplicate member %s", name)
		return
	}
	b.files[name] = data
}

// AddRecording encodes a flight recording as a .ttfr member and books
// its replay digest into the manifest, so verify can re-derive the
// final state.
func (b *Builder) AddRecording(name string, rec *flightrec.Recording) {
	if b.err != nil {
		return
	}
	enc := &countingWriter{}
	if err := rec.Encode(enc); err != nil {
		b.err = fmt.Errorf("runpack: encoding %s: %w", name, err)
		return
	}
	rd, err := recordingDigest(rec)
	if err != nil {
		b.err = fmt.Errorf("runpack: replaying %s: %w", name, err)
		return
	}
	b.AddFile(name, enc.data)
	if b.err == nil {
		b.replays[name] = rd
	}
}

// countingWriter buffers Encode output.
type countingWriter struct{ data []byte }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

// SetResult marks an already-added member as the run's canonical
// result.
func (b *Builder) SetResult(name string) {
	if b.err != nil {
		return
	}
	if _, ok := b.files[name]; !ok {
		b.err = fmt.Errorf("runpack: result member %s was never added", name)
		return
	}
	b.result = name
}

// Seal writes the pack under root: members, canonical manifest and
// receipt, in a directory named <kind>-<manifest sha256 prefix>. It
// returns the pack directory and the receipt line. Identical content
// seals to the identical directory (re-sealing is idempotent).
func (b *Builder) Seal(root string) (dir string, receipt string, err error) {
	if b.err != nil {
		return "", "", b.err
	}
	if b.result == "" {
		return "", "", fmt.Errorf("runpack: no result member set")
	}
	m := Manifest{
		Schema:       SchemaVersion,
		Kind:         b.kind,
		Command:      b.command,
		Result:       b.result,
		ResultSHA256: sha256Hex(b.files[b.result]),
		Config:       b.config,
	}
	names := make([]string, 0, len(b.files))
	for name := range b.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		data := b.files[name]
		m.Files = append(m.Files, FileEntry{
			Name:   name,
			Size:   int64(len(data)),
			SHA256: sha256Hex(data),
			Replay: b.replays[name],
		})
	}
	manifest, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return "", "", err
	}
	manifest = append(manifest, '\n')
	manifestSHA := sha256Hex(manifest)

	dir = filepath.Join(root, fmt.Sprintf("%s-%s", b.kind, manifestSHA[:12]))
	tmp := dir + ".tmp"
	if err := os.RemoveAll(tmp); err != nil {
		return "", "", err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", "", err
	}
	for _, name := range names {
		if err := os.WriteFile(filepath.Join(tmp, name), b.files[name], 0o644); err != nil {
			return "", "", err
		}
	}
	if err := os.WriteFile(filepath.Join(tmp, ManifestName), manifest, 0o644); err != nil {
		return "", "", err
	}
	receipt = FormatReceipt(Receipt{
		Kind:     b.kind,
		Manifest: manifestSHA,
		Result:   m.ResultSHA256,
		Command:  b.command,
	})
	if err := os.WriteFile(filepath.Join(tmp, ReceiptName), []byte(receipt+"\n"), 0o644); err != nil {
		return "", "", err
	}
	// Content addressing makes the rename race-free: same content, same
	// name, same bytes.
	if err := os.RemoveAll(dir); err != nil {
		return "", "", err
	}
	if err := os.Rename(tmp, dir); err != nil {
		return "", "", err
	}
	return dir, receipt, nil
}

// ReadManifest loads and parses a pack's manifest.
func ReadManifest(dir string) (*Manifest, []byte, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, nil, fmt.Errorf("runpack: %s: %w", dir, err)
	}
	if m.Schema != SchemaVersion {
		return nil, nil, fmt.Errorf("runpack: %s: manifest schema %d, want %d", dir, m.Schema, SchemaVersion)
	}
	return &m, raw, nil
}

// List returns the pack directories under root (directories holding a
// MANIFEST.json), sorted by name.
func List(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		if _, err := os.Stat(filepath.Join(dir, ManifestName)); err == nil {
			out = append(out, dir)
		}
	}
	sort.Strings(out)
	return out, nil
}
