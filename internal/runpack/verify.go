package runpack

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ticktock/internal/benchjson"
	"ticktock/internal/flightrec"
)

// VerifyOptions tunes Verify.
type VerifyOptions struct {
	// Rerun executes the receipt's command in-process and requires the
	// re-derived result bytes to hash to the manifest's result digest —
	// the full end-to-end re-derivation (slow: it re-runs the campaign
	// or case).
	Rerun bool
	// Log, when non-nil, receives one line per verification step.
	Log func(format string, args ...any)
}

func (o VerifyOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Verify re-checks a pack's whole integrity chain and fails on the
// first break:
//
//   - the directory name matches the manifest's content address;
//   - the receipt names this manifest and this result digest;
//   - every member's size and sha256 match the manifest;
//   - every recording member decodes (the TTFR codec's CRC fails closed
//     on corruption), replays to its final snapshot, and re-derives the
//     state digest the manifest promised;
//   - every BENCH_*.json member validates its own sha256 self-digest;
//   - with Rerun, the receipt command re-executed in-process produces
//     result bytes hashing to the manifest's result digest.
//
// A nil error means every byte of the pack is accounted for and the
// result is still derivable from the recorded evidence.
func Verify(dir string, opts VerifyOptions) error {
	m, raw, err := ReadManifest(dir)
	if err != nil {
		return err
	}
	manifestSHA := sha256Hex(raw)

	// Content address: the directory must be named by its manifest.
	wantSuffix := manifestSHA[:12]
	if base := filepath.Base(dir); !strings.HasSuffix(base, wantSuffix) {
		return fmt.Errorf("runpack: %s: directory name does not match manifest digest %s — pack renamed or manifest edited", dir, wantSuffix)
	}
	opts.logf("manifest %s (kind %s, %d files)", manifestSHA[:12], m.Kind, len(m.Files))

	// Receipt: must cross-reference the manifest and result digests.
	receiptRaw, err := os.ReadFile(filepath.Join(dir, ReceiptName))
	if err != nil {
		return fmt.Errorf("runpack: %s: missing receipt: %w", dir, err)
	}
	rc, err := ParseReceipt(strings.TrimSpace(string(receiptRaw)))
	if err != nil {
		return fmt.Errorf("runpack: %s: %w", dir, err)
	}
	if rc.Manifest != manifestSHA {
		return fmt.Errorf("runpack: %s: receipt names manifest %s, file hashes to %s", dir, rc.Manifest[:12], manifestSHA[:12])
	}
	if rc.Result != m.ResultSHA256 {
		return fmt.Errorf("runpack: %s: receipt result digest disagrees with manifest", dir)
	}
	if rc.Kind != m.Kind || rc.Command != m.Command {
		return fmt.Errorf("runpack: %s: receipt kind/command disagrees with manifest", dir)
	}
	opts.logf("receipt ok: %s", rc.Command)

	// Members: sizes, digests, and no strays.
	covered := map[string]bool{ManifestName: true, ReceiptName: true}
	resultSeen := false
	for _, fe := range m.Files {
		covered[fe.Name] = true
		data, err := os.ReadFile(filepath.Join(dir, fe.Name))
		if err != nil {
			return fmt.Errorf("runpack: %s: member %s: %w", dir, fe.Name, err)
		}
		if int64(len(data)) != fe.Size {
			return fmt.Errorf("runpack: %s: member %s is %d bytes, manifest says %d", dir, fe.Name, len(data), fe.Size)
		}
		if got := sha256Hex(data); got != fe.SHA256 {
			return fmt.Errorf("runpack: %s: member %s digest mismatch: manifest %s, file %s — content tampered",
				dir, fe.Name, fe.SHA256[:12], got[:12])
		}
		if fe.Name == m.Result {
			resultSeen = true
			if fe.SHA256 != m.ResultSHA256 {
				return fmt.Errorf("runpack: %s: result member digest disagrees with manifest result_sha256", dir)
			}
		}
		if fe.Replay != nil {
			if err := verifyRecording(fe, data); err != nil {
				return fmt.Errorf("runpack: %s: %w", dir, err)
			}
			opts.logf("member %s ok (replayed %d snapshots to cycle %d, state %s)",
				fe.Name, fe.Replay.Snapshots, fe.Replay.FinalCycle, fe.Replay.StateDigest)
		} else {
			opts.logf("member %s ok (%d bytes)", fe.Name, fe.Size)
		}
		if strings.HasPrefix(fe.Name, "BENCH_") && strings.HasSuffix(fe.Name, ".json") {
			if _, err := benchjson.Parse(data); err != nil {
				return fmt.Errorf("runpack: %s: member %s: %w", dir, fe.Name, err)
			}
			opts.logf("member %s benchjson self-digest ok", fe.Name)
		}
	}
	if !resultSeen {
		return fmt.Errorf("runpack: %s: result member %s missing from manifest file list", dir, m.Result)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !covered[e.Name()] {
			return fmt.Errorf("runpack: %s: stray member %s not covered by manifest", dir, e.Name())
		}
	}

	if opts.Rerun {
		result, err := ExecuteReceipt(rc)
		if err != nil {
			return fmt.Errorf("runpack: %s: re-deriving result: %w", dir, err)
		}
		if got := sha256Hex(result); got != m.ResultSHA256 {
			return fmt.Errorf("runpack: %s: re-derived result hashes to %s, manifest says %s — run no longer reproducible",
				dir, got[:12], m.ResultSHA256[:12])
		}
		opts.logf("rerun ok: result re-derived byte-identically (%d bytes)", len(result))
	}
	return nil
}

// verifyRecording decodes a .ttfr member (the codec's CRC catches
// corruption the sha256 already rules out — but this path also catches
// a manifest forged around corrupt bytes), replays it to its final
// snapshot and compares the re-derived state against the manifest's
// promise.
func verifyRecording(fe FileEntry, data []byte) error {
	rec, err := flightrec.Decode(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("member %s: %w", fe.Name, err)
	}
	if len(rec.Snapshots) != fe.Replay.Snapshots {
		return fmt.Errorf("member %s: %d snapshots, manifest says %d", fe.Name, len(rec.Snapshots), fe.Replay.Snapshots)
	}
	if rec.FinalCycle() != fe.Replay.FinalCycle {
		return fmt.Errorf("member %s: final cycle %d, manifest says %d", fe.Name, rec.FinalCycle(), fe.Replay.FinalCycle)
	}
	if len(rec.Snapshots) == 0 {
		return nil
	}
	s, err := rec.ReplayAt(len(rec.Snapshots) - 1)
	if err != nil {
		return fmt.Errorf("member %s: replay failed: %w", fe.Name, err)
	}
	if got := StateDigest(s); got != fe.Replay.StateDigest {
		return fmt.Errorf("member %s: re-derived state digest %s, manifest says %s — recording does not reproduce the recorded state",
			fe.Name, got, fe.Replay.StateDigest)
	}
	return nil
}
