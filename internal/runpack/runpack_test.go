package runpack

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ticktock/internal/difftest"
	"ticktock/internal/faultinject"
	"ticktock/internal/kernel"
)

// smallCampaign is the shared tiny-but-real campaign config for pack
// tests; tiny N keeps re-derivation cheap.
var smallCampaign = faultinject.Config{Seed: 7, N: 2}

// buildFaultcampPack seals a small real campaign into a pack under a
// fresh root and returns the pack dir.
func buildFaultcampPack(t *testing.T) string {
	t.Helper()
	rep := faultinject.Run(smallCampaign)
	dir, receipt, err := EmitFaultcamp(t.TempDir(), rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(receipt, "runpack/1 kind=faultcamp ") {
		t.Fatalf("unexpected receipt: %s", receipt)
	}
	return dir
}

// buildReplayPack seals one recorded case into a pack.
func buildReplayPack(t *testing.T, caseName string, fl kernel.Flavour) string {
	t.Helper()
	tc, err := findCase(caseName)
	if err != nil {
		t.Fatal(err)
	}
	_, rec, err := difftest.RunRecorded(tc, fl, difftest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dir, _, err := EmitReplay(t.TempDir(), caseName, fl, rec)
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestFaultcampPackVerifies(t *testing.T) {
	dir := buildFaultcampPack(t)
	if err := Verify(dir, VerifyOptions{}); err != nil {
		t.Fatalf("fresh pack fails verification: %v", err)
	}
	m, _, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The pack must carry the members the manifest schema promises:
	// result, rows, metrics, and a witness recording per port.
	for _, want := range []string{"result.txt", "rows.txt", "metrics.prom", "witness-arm.ttfr", "witness-rv.ttfr"} {
		found := false
		for _, fe := range m.Files {
			if fe.Name == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("pack is missing member %s", want)
		}
	}
}

// TestVerifyDetectsSingleFlippedByte is the negative acceptance
// criterion: flipping one byte in ANY manifest-covered file (and in the
// manifest and receipt themselves) must fail verification.
func TestVerifyDetectsSingleFlippedByte(t *testing.T) {
	pristine := buildFaultcampPack(t)
	entries, err := os.ReadDir(pristine)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Run(e.Name(), func(t *testing.T) {
			// Work on a copy so each member's tamper test is independent.
			dir := filepath.Join(t.TempDir(), filepath.Base(pristine))
			copyDir(t, pristine, dir)
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(data) == 0 {
				t.Skip("empty member")
			}
			data[len(data)/2] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := Verify(dir, VerifyOptions{}); err == nil {
				t.Fatalf("verification passed with a flipped byte in %s", e.Name())
			}
		})
	}
}

// TestVerifyRerunRederivesCampaign is the positive acceptance
// criterion: the receipt command re-executed in-process re-derives the
// campaign result byte-for-byte, and every recording member replays to
// the state digest the manifest pinned.
func TestVerifyRerunRederivesCampaign(t *testing.T) {
	dir := buildFaultcampPack(t)
	var steps []string
	opts := VerifyOptions{Rerun: true, Log: func(f string, a ...any) {
		steps = append(steps, f)
	}}
	if err := Verify(dir, opts); err != nil {
		t.Fatalf("rerun verification failed: %v", err)
	}
	joined := strings.Join(steps, "\n")
	if !strings.Contains(joined, "rerun ok") {
		t.Fatalf("rerun step missing from log:\n%s", joined)
	}
	if !strings.Contains(joined, "replayed") {
		t.Fatalf("recording replay step missing from log:\n%s", joined)
	}
}

func TestVerifyDetectsRenamedPack(t *testing.T) {
	dir := buildReplayPack(t, "c_hello", kernel.FlavourTickTock)
	renamed := filepath.Join(filepath.Dir(dir), "replay-000000000000")
	if err := os.Rename(dir, renamed); err != nil {
		t.Fatal(err)
	}
	err := Verify(renamed, VerifyOptions{})
	if err == nil || !strings.Contains(err.Error(), "directory name") {
		t.Fatalf("renamed pack accepted: %v", err)
	}
}

func TestVerifyDetectsStrayMember(t *testing.T) {
	dir := buildReplayPack(t, "c_hello", kernel.FlavourTickTock)
	if err := os.WriteFile(filepath.Join(dir, "smuggled.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := Verify(dir, VerifyOptions{})
	if err == nil || !strings.Contains(err.Error(), "stray") {
		t.Fatalf("stray member accepted: %v", err)
	}
}

func TestVerifyDetectsDeletedMember(t *testing.T) {
	dir := buildReplayPack(t, "c_hello", kernel.FlavourTickTock)
	if err := os.Remove(filepath.Join(dir, "trace.txt")); err != nil {
		t.Fatal(err)
	}
	if err := Verify(dir, VerifyOptions{}); err == nil {
		t.Fatal("pack with deleted member accepted")
	}
}

// TestSealIdempotent: sealing identical content twice lands on the
// identical directory — content addressing in action.
func TestSealIdempotent(t *testing.T) {
	root := t.TempDir()
	build := func() string {
		b := NewBuilder(KindReplay, "replay -record x -flavour ticktock", replayConfig{Case: "x", Flavour: "ticktock"})
		b.AddFile("result.txt", []byte("hello"))
		b.SetResult("result.txt")
		dir, _, err := b.Seal(root)
		if err != nil {
			t.Fatal(err)
		}
		return dir
	}
	a, bDir := build(), build()
	if a != bDir {
		t.Fatalf("identical content sealed to different dirs: %s vs %s", a, bDir)
	}
	if err := Verify(a, VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderRejectsBadMembers(t *testing.T) {
	cases := []struct {
		name string
		add  func(b *Builder)
		want string
	}{
		{"reserved manifest", func(b *Builder) { b.AddFile(ManifestName, nil) }, "reserved"},
		{"reserved receipt", func(b *Builder) { b.AddFile(ReceiptName, nil) }, "reserved"},
		{"path traversal", func(b *Builder) { b.AddFile("../evil", nil) }, "plain file name"},
		{"subdir", func(b *Builder) { b.AddFile("a/b", nil) }, "plain file name"},
		{"duplicate", func(b *Builder) { b.AddFile("x", nil); b.AddFile("x", nil) }, "duplicate"},
		{"unknown result", func(b *Builder) { b.AddFile("x", nil); b.SetResult("y") }, "never added"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(KindReplay, "cmd", nil)
			tc.add(b)
			if b.result == "" && tc.name != "unknown result" {
				b.AddFile("result.txt", []byte("r"))
				b.SetResult("result.txt")
			}
			_, _, err := b.Seal(t.TempDir())
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Seal() = %v, want error mentioning %q", err, tc.want)
			}
		})
	}
}

func TestListFindsPacks(t *testing.T) {
	root := t.TempDir()
	b := NewBuilder(KindReplay, "replay -record x -flavour ticktock", nil)
	b.AddFile("result.txt", []byte("r"))
	b.SetResult("result.txt")
	dir, _, err := b.Seal(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "not-a-pack"), 0o755); err != nil {
		t.Fatal(err)
	}
	got, err := List(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != dir {
		t.Fatalf("List() = %v, want [%s]", got, dir)
	}
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
