package runpack

import (
	"fmt"
	"strings"

	"ticktock/internal/campaign"
	"ticktock/internal/difftest"
	"ticktock/internal/faultinject"
	"ticktock/internal/flightrec"
	"ticktock/internal/kernel"
	"ticktock/internal/metrics"
	"ticktock/internal/trace"
)

// eventsText renders a recording's interleaved trace events as the
// pack's trace export — same columns as trace.ExportText, derived from
// the recorded event stream rather than a live tracer.
func eventsText(rec *flightrec.Recording) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-6s %-16s %-16s %s\n", "cycle", "seq", "proc", "kind", "detail")
	for _, e := range rec.Events {
		proc := "kernel"
		if e.Proc != trace.KernelProc {
			proc = fmt.Sprintf("%d/%s", e.Proc, e.Name)
		}
		fmt.Fprintf(&b, "%-16d %-6d %-16s %-16s %s\n", e.Cycle, e.Seq, proc, e.Kind, e.Label)
	}
	return []byte(b.String())
}

// prometheusText renders a registry's exposition for a pack member.
func prometheusText(reg *metrics.Registry) ([]byte, error) {
	var b strings.Builder
	if err := reg.ExportPrometheus(&b); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}

// faultcampConfig is the stable config view stored in campaign packs.
type faultcampConfig struct {
	Seed        int64  `json:"seed"`
	N           int    `json:"n"`
	MaxRestarts int    `json:"max_restarts"`
	Watchdog    int    `json:"watchdog"`
	BackoffBase uint64 `json:"backoff_base"`
	Chaos       string `json:"chaos,omitempty"`
}

// EmitFaultcamp seals a campaign run into a content-addressed pack
// under root: the report text (result member), the per-scenario
// cross-port rows, the fault_* metrics exposition, a witness recording
// of scenario 0's injected run on both ports (the evidence replay
// re-derives), and the flight recording of every violating run. The
// receipt's command re-runs the campaign in-process.
func EmitFaultcamp(root string, rep *faultinject.Report) (dir, receipt string, err error) {
	return emitFaultcamp(root, rep, FaultcampCommand(rep.Config))
}

// EmitFaultcampSupervised seals a supervised campaign run. A clean
// supervised report (no supervision section) is byte-identical to an
// unsupervised one, so it keeps the plain faultcamp command and seals
// to the identical pack; a report with supervision evidence gets the
// supervised command, whose chaos/retry/timeout flags re-derive the
// supervision section exactly.
func EmitFaultcampSupervised(root string, rep *faultinject.Report, sup campaign.Config) (dir, receipt string, err error) {
	cmd := FaultcampCommand(rep.Config)
	if rep.Sup != nil {
		cmd = FaultcampSupervisedCommand(rep.Config, sup)
	}
	return emitFaultcamp(root, rep, cmd)
}

func emitFaultcamp(root string, rep *faultinject.Report, cmd string) (dir, receipt string, err error) {
	cfg := rep.Config
	b := NewBuilder(KindFaultcamp, cmd, faultcampConfig{
		Seed: cfg.Seed, N: cfg.N,
		MaxRestarts: cfg.MaxRestarts, Watchdog: cfg.Watchdog, BackoffBase: cfg.BackoffBase,
		Chaos: cfg.Chaos,
	})
	b.AddFile("result.txt", []byte(rep.Text()))
	b.SetResult("result.txt")
	b.AddFile("rows.txt", []byte(difftest.Table(rep.Rows())))

	reg := metrics.NewRegistry()
	rep.Publish(reg)
	prom, err := prometheusText(reg)
	if err != nil {
		return "", "", err
	}
	b.AddFile("metrics.prom", prom)

	if len(rep.Results) > 0 {
		sc := rep.Results[0].Scenario
		arm, rv, err := faultinject.RecordScenario(sc, cfg)
		if err != nil {
			return "", "", err
		}
		b.AddRecording("witness-arm.ttfr", arm)
		b.AddRecording("witness-rv.ttfr", rv)
	}
	for _, res := range rep.Results {
		if res.ARM.Replay != nil {
			b.AddRecording(fmt.Sprintf("violation-sc%04d-arm.ttfr", res.Scenario.Index), res.ARM.Replay)
		}
		if res.RV.Replay != nil {
			b.AddRecording(fmt.Sprintf("violation-sc%04d-rv.ttfr", res.Scenario.Index), res.RV.Replay)
		}
	}
	return b.Seal(root)
}

// difftestConfig is the stable config view stored in difftest packs.
type difftestConfig struct {
	Bug string `json:"bug,omitempty"`
}

// EmitDifftest seals a §6.1 campaign into a content-addressed pack
// under root: the campaign table (result member), the merged metrics
// exposition, a witness recording of the first case on both flavours,
// and — for every row that missed its expectation — both flavours'
// recordings of the divergent case. The receipt's command re-runs the
// campaign in-process.
func EmitDifftest(root string, cfg difftest.Config, rows []difftest.Row) (dir, receipt string, err error) {
	b := NewBuilder(KindDifftest, DifftestCommand(cfg), difftestConfig{Bug: bugName(cfg)})
	b.AddFile("result.txt", []byte(difftest.Table(rows)))
	b.SetResult("result.txt")

	prom, err := prometheusText(difftest.MergeMetrics(rows))
	if err != nil {
		return "", "", err
	}
	b.AddFile("metrics.prom", prom)

	record := func(name, caseName string, fl kernel.Flavour) error {
		tc, err := findCase(caseName)
		if err != nil {
			return err
		}
		_, rec, err := difftest.RunRecorded(tc, fl, cfg)
		if err != nil {
			return err
		}
		b.AddRecording(name, rec)
		b.AddFile(strings.TrimSuffix(name, ".ttfr")+"-trace.txt", eventsText(rec))
		return nil
	}
	if len(rows) > 0 {
		witness := rows[0].Name
		if err := record("witness-ticktock.ttfr", witness, kernel.FlavourTickTock); err != nil {
			return "", "", err
		}
		if err := record("witness-tock.ttfr", witness, kernel.FlavourTock); err != nil {
			return "", "", err
		}
	}
	for _, row := range rows {
		if row.Err != nil || row.OK() {
			continue
		}
		if err := record("div-"+row.Name+"-ticktock.ttfr", row.Name, kernel.FlavourTickTock); err != nil {
			return "", "", err
		}
		if err := record("div-"+row.Name+"-tock.ttfr", row.Name, kernel.FlavourTock); err != nil {
			return "", "", err
		}
	}
	return b.Seal(root)
}

// replayConfig is the stable config view stored in replay packs.
type replayConfig struct {
	Case    string `json:"case"`
	Flavour string `json:"flavour"`
}

// EmitReplay seals one recorded case into a content-addressed pack
// under root: the recording itself is the result member (the receipt's
// command re-records it byte-identically), alongside its trace export.
func EmitReplay(root, caseName string, fl kernel.Flavour, rec *flightrec.Recording) (dir, receipt string, err error) {
	b := NewBuilder(KindReplay, ReplayCommand(caseName, fl), replayConfig{Case: caseName, Flavour: fl.String()})
	b.AddRecording("recording.ttfr", rec)
	b.SetResult("recording.ttfr")
	b.AddFile("trace.txt", eventsText(rec))
	return b.Seal(root)
}
