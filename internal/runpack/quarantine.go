package runpack

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"ticktock/internal/campaign"
	"ticktock/internal/faultinject"
)

// KindQuarantine packs are sealed bug reports for poison scenarios: a
// scenario the campaign supervisor retried to exhaustion and gave up
// on. The campaign itself continues — the pack is the standing,
// verifiable record of what was skipped and why.
//
// The result member is derived purely from the receipt command's flags
// (seed, scenario index, failure class, attempt count), so `runpack
// verify -rerun` re-derives it without re-running the poison scenario —
// which, being poison, might wedge or crash the verifier. The
// nondeterministic evidence (per-attempt errors and panic stacks) lives
// in the separate attempts.json member, content-addressed by the
// manifest like any other member but outside the re-derivation chain.
const KindQuarantine = "quarantine"

// QuarantineCommand renders the receipt command for one quarantined
// scenario.
func QuarantineCommand(cfg faultinject.Config, index int, failure string, attempts int) string {
	return fmt.Sprintf("quarantine -seed %d -n %d -index %d -failure %s -attempts %d",
		cfg.Seed, cfg.N, index, failure, attempts)
}

// quarantineReport renders the deterministic bug-report text from
// exactly the facts the receipt command carries.
func quarantineReport(seed int64, n, index int, failure string, attempts int) (string, error) {
	if index < 0 || index >= n {
		return "", fmt.Errorf("runpack: quarantine index %d out of range [0,%d)", index, n)
	}
	sc := faultinject.GenScenarios(faultinject.Config{Seed: seed, N: n})[index]
	var b strings.Builder
	fmt.Fprintf(&b, "quarantined scenario %s\n", sc.Label())
	fmt.Fprintf(&b, "campaign: seed=%d n=%d\n", seed, n)
	fmt.Fprintf(&b, "verdict: %s after %d attempts — excluded from campaign aggregates\n", failure, attempts)
	fmt.Fprintf(&b, "scenario: app=%s kind=%s quantum=%d nth=%d entry=%d quarantine-policy=%v monolithic=%v chip=%d\n",
		sc.App, sc.Kind, sc.Quantum, sc.Nth, sc.Entry, sc.Quarantine, sc.Monolithic, sc.Chip)
	fmt.Fprintf(&b, "reproduce: faultcamp -seed %d -n %d (scenario index %d)\n", seed, n, index)
	return b.String(), nil
}

// EmitQuarantine seals one quarantined outcome of a supervised fault
// campaign as a content-addressed bug-report pack under root.
func EmitQuarantine(root string, cfg faultinject.Config, o campaign.Outcome[faultinject.Result]) (dir, receipt string, err error) {
	if o.Status != campaign.StatusQuarantined {
		return "", "", fmt.Errorf("runpack: outcome %s is %v, not quarantined", o.Key, o.Status)
	}
	failure := o.FinalFailure()
	cmd := QuarantineCommand(cfg, o.Index, failure, len(o.Attempts))
	result, err := quarantineReport(cfg.Seed, cfg.N, o.Index, failure, len(o.Attempts))
	if err != nil {
		return "", "", err
	}
	evidence, err := json.MarshalIndent(o.Attempts, "", "  ")
	if err != nil {
		return "", "", err
	}
	b := NewBuilder(KindQuarantine, cmd, cfg)
	b.AddFile("result.txt", []byte(result))
	b.AddFile("attempts.json", append(evidence, '\n'))
	b.SetResult("result.txt")
	return b.Seal(root)
}

func executeQuarantine(args []string) ([]byte, error) {
	var seed int64
	var n, index, attempts int
	var failure string
	index = -1
	if err := parseFlags(args, map[string]func(string) error{
		"-seed":     func(v string) (err error) { seed, err = strconv.ParseInt(v, 10, 64); return },
		"-n":        func(v string) (err error) { n, err = strconv.Atoi(v); return },
		"-index":    func(v string) (err error) { index, err = strconv.Atoi(v); return },
		"-failure":  func(v string) error { failure = v; return nil },
		"-attempts": func(v string) (err error) { attempts, err = strconv.Atoi(v); return },
	}); err != nil {
		return nil, err
	}
	if n == 0 || index < 0 || failure == "" {
		return nil, fmt.Errorf("runpack: quarantine command needs -n, -index and -failure")
	}
	out, err := quarantineReport(seed, n, index, failure, attempts)
	if err != nil {
		return nil, err
	}
	return []byte(out), nil
}

func init() {
	executors[KindQuarantine] = executeQuarantine
}
