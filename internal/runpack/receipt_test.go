package runpack

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ticktock/internal/faultinject"
	"ticktock/internal/flightrec"
	"ticktock/internal/kernel"
)

func TestReceiptRoundTrip(t *testing.T) {
	r := Receipt{
		Kind:     KindFaultcamp,
		Manifest: strings.Repeat("ab", 32),
		Result:   strings.Repeat("cd", 32),
		Command:  `faultcamp -seed 7 -n 20`,
	}
	line := FormatReceipt(r)
	got, err := ParseReceipt(line)
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip mangled the receipt:\n%+v\n%+v", got, r)
	}
}

func TestParseReceiptRejects(t *testing.T) {
	valid := FormatReceipt(Receipt{
		Kind: KindReplay, Manifest: strings.Repeat("0", 64), Result: strings.Repeat("1", 64),
		Command: "replay -record c_hello -flavour ticktock",
	})
	cases := []struct {
		name string
		line string
	}{
		{"wrong version", strings.Replace(valid, "runpack/1", "runpack/9", 1)},
		{"no prefix", strings.TrimPrefix(valid, "runpack/1 ")},
		{"truncated digest", strings.Replace(valid, strings.Repeat("0", 64), strings.Repeat("0", 63), 1)},
		{"uppercase digest", strings.Replace(valid, strings.Repeat("0", 64), strings.Repeat("A", 64), 1)},
		{"no sha prefix", strings.Replace(valid, "manifest=sha256:", "manifest=", 1)},
		{"unterminated cmd", strings.TrimSuffix(valid, `"`)},
		{"unknown key", valid + " extra=1"},
		{"missing cmd", valid[:strings.Index(valid, " cmd=")]},
		{"empty", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseReceipt(tc.line); err == nil {
				t.Fatalf("accepted malformed receipt: %q", tc.line)
			}
		})
	}
}

// TestReceiptExecutesOnBothPorts is the receipt round-trip contract: the
// receipt line parsed back from a sealed campaign pack re-executes
// in-process to the exact result bytes, and the pack's witness
// recordings — one per port — are re-derived byte-identically by
// re-running the recorded scenario on the ARM and RISC-V ports.
func TestReceiptExecutesOnBothPorts(t *testing.T) {
	dir := buildFaultcampPack(t)

	raw, err := os.ReadFile(filepath.Join(dir, ReceiptName))
	if err != nil {
		t.Fatal(err)
	}
	rc, err := ParseReceipt(strings.TrimSpace(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if rc.Kind != KindFaultcamp || rc.Command != FaultcampCommand(smallCampaign) {
		t.Fatalf("unexpected receipt: %+v", rc)
	}

	// Execute the receipt in-process: the re-derived result must be
	// byte-identical to the pack's result member.
	result, err := ExecuteReceipt(rc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(dir, "result.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(result, want) {
		t.Fatalf("re-executed receipt diverges from the stored result:\n%s\n---\n%s", result, want)
	}

	// Re-derive the witness recordings for both ports and require
	// byte-identical encodings plus matching replayed state digests.
	sc := faultinject.GenScenarios(smallCampaign)[0]
	arm, rv, err := faultinject.RecordScenario(sc, smallCampaign)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, port := range []struct {
		member string
		rec    *flightrec.Recording
	}{
		{"witness-arm.ttfr", arm},
		{"witness-rv.ttfr", rv},
	} {
		stored, err := os.ReadFile(filepath.Join(dir, port.member))
		if err != nil {
			t.Fatal(err)
		}
		var rerun bytes.Buffer
		if err := port.rec.Encode(&rerun); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rerun.Bytes(), stored) {
			t.Fatalf("%s: re-recorded run does not encode byte-identically", port.member)
		}
		// The re-derived final state must match the manifest's pinned
		// state digest — same machine state down to every field and page.
		s, err := port.rec.ReplayAt(len(port.rec.Snapshots) - 1)
		if err != nil {
			t.Fatal(err)
		}
		var fe *FileEntry
		for i := range m.Files {
			if m.Files[i].Name == port.member {
				fe = &m.Files[i]
			}
		}
		if fe == nil || fe.Replay == nil {
			t.Fatalf("%s missing replay digest in manifest", port.member)
		}
		if got := StateDigest(s); got != fe.Replay.StateDigest {
			t.Fatalf("%s: re-derived state digest %s, manifest pinned %s", port.member, got, fe.Replay.StateDigest)
		}
	}
}

// TestReplayReceiptRoundTrip: a replay pack's receipt re-records the
// case and must reproduce the recording member byte for byte.
func TestReplayReceiptRoundTrip(t *testing.T) {
	dir := buildReplayPack(t, "c_hello", kernel.FlavourTock)
	raw, err := os.ReadFile(filepath.Join(dir, ReceiptName))
	if err != nil {
		t.Fatal(err)
	}
	rc, err := ParseReceipt(strings.TrimSpace(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	result, err := ExecuteReceipt(rc)
	if err != nil {
		t.Fatal(err)
	}
	stored, err := os.ReadFile(filepath.Join(dir, "recording.ttfr"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(result, stored) {
		t.Fatal("re-executed replay receipt does not reproduce the recording bytes")
	}
}

func TestExecuteReceiptRejectsUnknownCommand(t *testing.T) {
	_, err := ExecuteReceipt(Receipt{Command: "rm -rf /"})
	if err == nil || !strings.Contains(err.Error(), "no in-process executor") {
		t.Fatalf("unknown command accepted: %v", err)
	}
}
