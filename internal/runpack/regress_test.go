package runpack

import (
	"path/filepath"
	"strings"
	"testing"

	"ticktock/internal/difftest"
	"ticktock/internal/kernel"
	"ticktock/internal/monolithic"
)

// regressionsRoot holds the distilled regression packs committed to the
// repo — every pack in it replays in CI via TestRegressions.
const regressionsRoot = "testdata/regressions"

func regressionDirs(t *testing.T) []string {
	t.Helper()
	dirs, err := List(regressionsRoot)
	if err != nil {
		t.Fatalf("reading %s: %v", regressionsRoot, err)
	}
	if len(dirs) == 0 {
		t.Fatalf("no regression packs under %s — the distilled suite is gone", regressionsRoot)
	}
	return dirs
}

// TestRegressions is the standing distilled-regression suite: every
// committed pack is integrity-verified (manifest digests, recording
// slices replayed to their pinned post-states) and its invariant is
// re-asserted against current code.
func TestRegressions(t *testing.T) {
	for _, dir := range regressionDirs(t) {
		t.Run(filepath.Base(dir), func(t *testing.T) {
			if err := CheckRegression(dir, RegressOptions{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRegressionFailsBeforeFix proves the packs guard something: the
// difftest pack distilled from the missed-mode-switch bug must FAIL
// when that bug is re-seeded (simulating the pre-fix kernel) and pass
// against current code — the fails-before, passes-after contract.
func TestRegressionFailsBeforeFix(t *testing.T) {
	found := false
	for _, dir := range regressionDirs(t) {
		r, err := ReadRegress(dir)
		if err != nil {
			t.Fatal(err)
		}
		if r.Source != KindDifftest || r.Bug != "missed-mode-switch" {
			continue
		}
		found = true
		err = CheckRegression(dir, RegressOptions{Bugs: monolithic.BugSet{MissedModeSwitch: true}})
		if err == nil || !strings.Contains(err.Error(), "REGRESSION") {
			t.Fatalf("pack %s passed with the distilled bug re-seeded: %v", dir, err)
		}
		if err := CheckRegression(dir, RegressOptions{}); err != nil {
			t.Fatalf("pack %s fails against current (fixed) code: %v", dir, err)
		}
	}
	if !found {
		t.Fatal("no committed missed-mode-switch regression pack found")
	}
}

// TestCommittedPackContents pins the structural expectations of the
// committed packs: the difftest pack bisected the bug to a concrete
// field with clean-vs-buggy slices, the faultcamp pack pins its
// scenario coordinates.
func TestCommittedPackContents(t *testing.T) {
	var diffSeen, campSeen bool
	for _, dir := range regressionDirs(t) {
		r, err := ReadRegress(dir)
		if err != nil {
			t.Fatal(err)
		}
		switch r.Source {
		case KindDifftest:
			diffSeen = true
			if r.Case == "" || r.Invariant != InvariantRowOK {
				t.Fatalf("%s: malformed difftest regress: %+v", dir, r)
			}
			if r.Divergence == nil || r.Divergence.Field == "" {
				t.Fatalf("%s: difftest regress carries no bisected divergence", dir)
			}
		case KindFaultcamp:
			campSeen = true
			if r.N == 0 || r.ScenarioLabel == "" || r.Invariant != InvariantNoViolations {
				t.Fatalf("%s: malformed faultcamp regress: %+v", dir, r)
			}
		default:
			t.Fatalf("%s: unknown source %q", dir, r.Source)
		}
	}
	if !diffSeen || !campSeen {
		t.Fatalf("committed suite must hold both a difftest and a faultcamp pack (difftest=%v faultcamp=%v)", diffSeen, campSeen)
	}
}

// TestDistillCaseRoundTrip distills a fresh pack into a temp dir and
// replays it immediately — the full distillation path under test, not
// just the committed artifacts.
func TestDistillCaseRoundTrip(t *testing.T) {
	root := t.TempDir()
	dir, receipt, err := DistillCase(root, "mpu_walk_region", monolithic.BugSet{MissedModeSwitch: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(receipt, `cmd="regress -case mpu_walk_region -bug missed-mode-switch"`) {
		t.Fatalf("unexpected receipt: %s", receipt)
	}
	if err := CheckRegression(dir, RegressOptions{}); err != nil {
		t.Fatal(err)
	}
	// The regress executor must re-derive the result byte-identically.
	if err := Verify(dir, VerifyOptions{Rerun: true}); err != nil {
		t.Fatal(err)
	}
	r, err := ReadRegress(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Compare != "clean-vs-buggy" || r.Divergence == nil || r.Divergence.Field != "cpu.control" {
		t.Fatalf("distillation did not localize the mode-switch bug: %+v", r)
	}
}

// TestSliceRecordingPreservesFinalState: a slice replayed to its end
// reconstructs the exact state the full recording had at the slice
// point — fields, memory image and cycle.
func TestSliceRecordingPreservesFinalState(t *testing.T) {
	tc, err := findCase("mpu_walk_region")
	if err != nil {
		t.Fatal(err)
	}
	_, rec, err := difftest.RunRecorded(tc, kernel.FlavourTickTock, difftest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Snapshots) < 4 {
		t.Fatalf("recording too short to slice: %d snapshots", len(rec.Snapshots))
	}
	for _, idx := range []int{0, 1, len(rec.Snapshots) / 2, len(rec.Snapshots) - 1} {
		slice, err := sliceRecording(rec, idx)
		if err != nil {
			t.Fatal(err)
		}
		want, err := rec.ReplayAt(idx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := slice.ReplayAt(len(slice.Snapshots) - 1)
		if err != nil {
			t.Fatal(err)
		}
		if StateDigest(got) != StateDigest(want) {
			t.Fatalf("slice at %d replays to digest %s, original state is %s", idx, StateDigest(got), StateDigest(want))
		}
		if len(slice.Snapshots) > 2 {
			t.Fatalf("slice at %d kept %d snapshots, want <= 2", idx, len(slice.Snapshots))
		}
	}
}
