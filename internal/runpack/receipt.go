package runpack

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"time"

	"ticktock/internal/apps"
	"ticktock/internal/campaign"
	"ticktock/internal/difftest"
	"ticktock/internal/faultinject"
	"ticktock/internal/kernel"
	"ticktock/internal/monolithic"
)

// receiptPrefix versions the receipt line format.
const receiptPrefix = "runpack/1"

// Receipt is the one-line provenance record written next to the
// manifest. It names the manifest (which in turn names every member),
// the result digest, and the exact command that re-derives the result —
// the minimal set of facts needed to check a pack without trusting it.
type Receipt struct {
	Kind     string
	Manifest string // sha256 hex of MANIFEST.json
	Result   string // sha256 hex of the result member
	Command  string // in-process replay command, e.g. "faultcamp -seed 7 -n 20"
}

// FormatReceipt renders the canonical receipt line (without trailing
// newline):
//
//	runpack/1 kind=faultcamp manifest=sha256:<hex> result=sha256:<hex> cmd="faultcamp -seed 7 -n 20"
func FormatReceipt(r Receipt) string {
	return fmt.Sprintf("%s kind=%s manifest=sha256:%s result=sha256:%s cmd=%s",
		receiptPrefix, r.Kind, r.Manifest, r.Result, strconv.Quote(r.Command))
}

// ParseReceipt parses a receipt line back into its fields, rejecting
// unknown versions, malformed fields and missing keys.
func ParseReceipt(line string) (Receipt, error) {
	var r Receipt
	rest, ok := strings.CutPrefix(line, receiptPrefix+" ")
	if !ok {
		return r, fmt.Errorf("runpack: receipt does not start with %q: %q", receiptPrefix, line)
	}
	seen := map[string]bool{}
	for rest != "" {
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			break
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return r, fmt.Errorf("runpack: malformed receipt near %q", rest)
		}
		key := rest[:eq]
		rest = rest[eq+1:]
		var val string
		if strings.HasPrefix(rest, `"`) {
			// Quoted value: find its end with the strconv grammar.
			q, err := scanQuoted(rest)
			if err != nil {
				return r, fmt.Errorf("runpack: receipt key %s: %w", key, err)
			}
			val, err = strconv.Unquote(rest[:q])
			if err != nil {
				return r, fmt.Errorf("runpack: receipt key %s: %w", key, err)
			}
			rest = rest[q:]
		} else {
			end := strings.IndexByte(rest, ' ')
			if end < 0 {
				end = len(rest)
			}
			val = rest[:end]
			rest = rest[end:]
		}
		if seen[key] {
			return r, fmt.Errorf("runpack: receipt repeats key %s", key)
		}
		seen[key] = true
		switch key {
		case "kind":
			r.Kind = val
		case "manifest":
			hex, err := cutDigest(val)
			if err != nil {
				return r, fmt.Errorf("runpack: receipt manifest: %w", err)
			}
			r.Manifest = hex
		case "result":
			hex, err := cutDigest(val)
			if err != nil {
				return r, fmt.Errorf("runpack: receipt result: %w", err)
			}
			r.Result = hex
		case "cmd":
			r.Command = val
		default:
			return r, fmt.Errorf("runpack: receipt has unknown key %s", key)
		}
	}
	for _, need := range []string{"kind", "manifest", "result", "cmd"} {
		if !seen[need] {
			return r, fmt.Errorf("runpack: receipt is missing key %s", need)
		}
	}
	return r, nil
}

// scanQuoted returns the length of the leading Go-quoted string in s.
func scanQuoted(s string) (int, error) {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i + 1, nil
		}
	}
	return 0, fmt.Errorf("unterminated quoted value")
}

// cutDigest strips the sha256: prefix and validates the hex length.
func cutDigest(v string) (string, error) {
	hex, ok := strings.CutPrefix(v, "sha256:")
	if !ok {
		return "", fmt.Errorf("digest %q lacks sha256: prefix", v)
	}
	if len(hex) != 64 {
		return "", fmt.Errorf("digest %q is not 64 hex chars", hex)
	}
	for _, c := range hex {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("digest %q is not lowercase hex", hex)
		}
	}
	return hex, nil
}

// ExecuteReceipt runs the receipt's command in-process and returns the
// re-derived result bytes — the bytes that must hash to Receipt.Result.
// The simulated boards are deterministic, so this is exact, not
// approximate: a mismatch means either the pack or the code changed.
func ExecuteReceipt(r Receipt) ([]byte, error) {
	argv, err := splitCommand(r.Command)
	if err != nil {
		return nil, err
	}
	if len(argv) == 0 {
		return nil, fmt.Errorf("runpack: receipt has an empty command")
	}
	exec, ok := executors[argv[0]]
	if !ok {
		return nil, fmt.Errorf("runpack: no in-process executor for command %q", argv[0])
	}
	return exec(argv[1:])
}

// splitCommand tokenizes a command string, honouring double quotes.
func splitCommand(s string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inWord, inQuote := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			inWord = true
		case c == ' ' && !inQuote:
			if inWord {
				out = append(out, cur.String())
				cur.Reset()
				inWord = false
			}
		default:
			cur.WriteByte(c)
			inWord = true
		}
	}
	if inQuote {
		return nil, fmt.Errorf("runpack: unterminated quote in command %q", s)
	}
	if inWord {
		out = append(out, cur.String())
	}
	return out, nil
}

// executors maps a receipt command name to its in-process re-derivation.
// Each mirrors the corresponding cmd/ tool's result exactly; none of
// them touch the filesystem or the wall clock.
var executors = map[string]func(args []string) ([]byte, error){
	KindFaultcamp: executeFaultcamp,
	KindDifftest:  executeDifftest,
	KindReplay:    executeReplay,
}

// FaultcampCommand renders the receipt command for a campaign config.
func FaultcampCommand(cfg faultinject.Config) string {
	return fmt.Sprintf("faultcamp -seed %d -n %d", cfg.Seed, cfg.N)
}

// FaultcampSupervisedCommand renders the receipt command for a
// supervised campaign whose report carries a supervision section: the
// chaos spec, retry budget and timeout are part of what re-derives the
// result bytes, so they belong in the command.
func FaultcampSupervisedCommand(cfg faultinject.Config, sup campaign.Config) string {
	cmd := FaultcampCommand(cfg)
	if cfg.Chaos != "" {
		cmd += fmt.Sprintf(" -chaos %q", cfg.Chaos)
	}
	if sup.Retries > 0 {
		cmd += fmt.Sprintf(" -retries %d", sup.Retries)
	}
	if sup.Timeout > 0 {
		cmd += fmt.Sprintf(" -timeout %s", sup.Timeout)
	}
	return cmd
}

func executeFaultcamp(args []string) ([]byte, error) {
	var cfg faultinject.Config
	var sup campaign.Config
	supervised := false
	if err := parseFlags(args, map[string]func(string) error{
		"-seed":  func(v string) (err error) { cfg.Seed, err = strconv.ParseInt(v, 10, 64); return },
		"-n":     func(v string) (err error) { cfg.N, err = strconv.Atoi(v); return },
		"-chaos": func(v string) error { cfg.Chaos = v; supervised = true; return nil },
		"-retries": func(v string) (err error) {
			sup.Retries, err = strconv.Atoi(v)
			supervised = true
			return
		},
		"-timeout": func(v string) (err error) {
			sup.Timeout, err = time.ParseDuration(v)
			supervised = true
			return
		},
	}); err != nil {
		return nil, err
	}
	if cfg.N == 0 {
		return nil, fmt.Errorf("runpack: faultcamp command needs -n")
	}
	if supervised {
		rep, _, err := faultinject.RunSupervised(cfg, sup)
		if err != nil {
			return nil, err
		}
		return []byte(rep.Text()), nil
	}
	rep := faultinject.Run(cfg)
	return []byte(rep.Text()), nil
}

// DifftestCommand renders the receipt command for a campaign config.
func DifftestCommand(cfg difftest.Config) string {
	if b := bugName(cfg); b != "" {
		return "difftest -bug " + b
	}
	return "difftest"
}

func executeDifftest(args []string) ([]byte, error) {
	var bug string
	if err := parseFlags(args, map[string]func(string) error{
		"-bug": func(v string) error { bug = v; return nil },
	}); err != nil {
		return nil, err
	}
	cfg := difftest.Config{NoTraceDump: true}
	if bug != "" {
		b, err := ParseBug(bug)
		if err != nil {
			return nil, err
		}
		cfg.Bugs = b
	}
	rows := difftest.RunAllConfig(cfg)
	return []byte(difftest.Table(rows)), nil
}

// ReplayCommand renders the receipt command for a single recorded case.
func ReplayCommand(caseName string, fl kernel.Flavour) string {
	return fmt.Sprintf("replay -record %s -flavour %s", caseName, fl)
}

func executeReplay(args []string) ([]byte, error) {
	var caseName, flavour string
	if err := parseFlags(args, map[string]func(string) error{
		"-record":  func(v string) error { caseName = v; return nil },
		"-flavour": func(v string) error { flavour = v; return nil },
	}); err != nil {
		return nil, err
	}
	tc, err := findCase(caseName)
	if err != nil {
		return nil, err
	}
	fl, err := ParseFlavour(flavour)
	if err != nil {
		return nil, err
	}
	_, rec, err := difftest.RunRecorded(tc, fl, difftest.Config{})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// parseFlags walks "-flag value" pairs against a handler table.
func parseFlags(args []string, handlers map[string]func(string) error) error {
	for i := 0; i < len(args); i++ {
		h, ok := handlers[args[i]]
		if !ok {
			return fmt.Errorf("runpack: unknown command flag %q", args[i])
		}
		if i+1 >= len(args) {
			return fmt.Errorf("runpack: command flag %s needs a value", args[i])
		}
		i++
		if err := h(args[i]); err != nil {
			return fmt.Errorf("runpack: command flag %s: %w", args[i-1], err)
		}
	}
	return nil
}

// findCase looks up a release-test case by name.
func findCase(name string) (apps.TestCase, error) {
	if name == "" {
		return apps.TestCase{}, fmt.Errorf("runpack: replay command needs -record CASE")
	}
	for _, tc := range apps.All() {
		if tc.Name == name {
			return tc, nil
		}
	}
	return apps.TestCase{}, fmt.Errorf("runpack: unknown release-test case %q", name)
}

// ParseFlavour parses a kernel flavour name as it appears in receipt
// commands and pack configs.
func ParseFlavour(name string) (kernel.Flavour, error) {
	switch name {
	case "ticktock":
		return kernel.FlavourTickTock, nil
	case "tock":
		return kernel.FlavourTock, nil
	default:
		return 0, fmt.Errorf("runpack: unknown kernel flavour %q", name)
	}
}

// bugName names the single enabled baseline bug ("" when none) — the
// inverse of ParseBug, shared by receipt commands and distilled packs.
func bugName(cfg difftest.Config) string {
	switch {
	case cfg.Bugs.GrantOverlap:
		return "grant-overlap"
	case cfg.Bugs.BrkUnderflow:
		return "brk-underflow"
	case cfg.Bugs.MissedModeSwitch:
		return "missed-mode-switch"
	}
	return ""
}

// ParseBug resolves a published baseline bug by name — the inverse of
// bugName, shared with the CLIs and distilled regression packs.
func ParseBug(name string) (monolithic.BugSet, error) {
	var b monolithic.BugSet
	switch name {
	case "grant-overlap":
		b.GrantOverlap = true
	case "brk-underflow":
		b.BrkUnderflow = true
	case "missed-mode-switch":
		b.MissedModeSwitch = true
	default:
		return b, fmt.Errorf("runpack: unknown baseline bug %q", name)
	}
	return b, nil
}
