package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAppBreaksValid(t *testing.T) {
	b, err := NewAppBreaks(0x2000_0000, 0x2000, 0x2000_1000, 0x800, 0x0004_0000, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if b.MemoryStart() != 0x2000_0000 || b.MemorySize() != 0x2000 {
		t.Fatalf("mem=%x+%x", b.MemoryStart(), b.MemorySize())
	}
	if b.KernelBreak() != 0x2000_2000-0x800 {
		t.Fatalf("kernelBreak=0x%x", b.KernelBreak())
	}
	if b.GrantSize() != 0x800 {
		t.Fatalf("grantSize=%d", b.GrantSize())
	}
	if b.MemoryEnd() != 0x2000_2000 {
		t.Fatalf("memoryEnd=0x%x", b.MemoryEnd())
	}
}

func TestNewAppBreaksRejectsOverlap(t *testing.T) {
	// appBreak == kernelBreak violates the strict inequality — the §3.4
	// grant-overlap scenario expressed logically.
	_, err := NewAppBreaks(0x2000_0000, 0x2000, 0x2000_1800, 0x800, 0, 0x1000)
	if err == nil {
		t.Fatal("appBreak == kernelBreak accepted")
	}
	if !strings.Contains(err.Error(), "appBreak < kernelBreak") {
		t.Fatalf("wrong clause: %v", err)
	}
	// appBreak past kernelBreak.
	if _, err := NewAppBreaks(0x2000_0000, 0x2000, 0x2000_1C00, 0x800, 0, 0x1000); err == nil {
		t.Fatal("appBreak > kernelBreak accepted")
	}
}

func TestNewAppBreaksRejectsBreakBelowStart(t *testing.T) {
	if _, err := NewAppBreaks(0x2000_1000, 0x2000, 0x2000_0FFF, 0x100, 0, 0x1000); err == nil {
		t.Fatal("appBreak below memoryStart accepted")
	}
}

func TestNewAppBreaksRejectsOversizedGrant(t *testing.T) {
	if _, err := NewAppBreaks(0x2000_0000, 0x1000, 0x2000_0000, 0x2000, 0, 0x1000); err == nil {
		t.Fatal("kernelSize > memorySize accepted")
	}
}

func TestNewAppBreaksRejectsWrap(t *testing.T) {
	if _, err := NewAppBreaks(0xFFFF_F000, 0x2000, 0xFFFF_F800, 0x100, 0, 0x100); err == nil {
		t.Fatal("wrapping memory block accepted")
	}
}

func TestSetAppBreakEnforcesInvariants(t *testing.T) {
	b, err := NewAppBreaks(0x2000_0000, 0x2000, 0x2000_1000, 0x800, 0, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	// Legal move up to just below kernel break.
	if err := b.SetAppBreak(b.KernelBreak() - 1); err != nil {
		t.Fatalf("legal brk rejected: %v", err)
	}
	// Touching the kernel break is an isolation violation.
	if err := b.SetAppBreak(b.KernelBreak()); err == nil {
		t.Fatal("brk onto kernelBreak accepted")
	}
	// Below memory start.
	if err := b.SetAppBreak(0x1FFF_FFFF); err == nil {
		t.Fatal("brk below memoryStart accepted")
	}
	// Failed updates must not mutate.
	if b.AppBreak() != b.KernelBreak()-1 {
		t.Fatalf("failed SetAppBreak mutated state: 0x%x", b.AppBreak())
	}
}

func TestSetKernelBreakEnforcesInvariants(t *testing.T) {
	b, err := NewAppBreaks(0x2000_0000, 0x2000, 0x2000_1000, 0x800, 0, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetKernelBreak(0x2000_1001); err != nil {
		t.Fatalf("legal grant growth rejected: %v", err)
	}
	if err := b.SetKernelBreak(0x2000_1000); err == nil {
		t.Fatal("kernelBreak onto appBreak accepted")
	}
	if err := b.SetKernelBreak(b.MemoryEnd() + 1); err == nil {
		t.Fatal("kernelBreak past memory end accepted")
	}
}

func TestContainsInRAMAndFlash(t *testing.T) {
	b, err := NewAppBreaks(0x2000_0000, 0x2000, 0x2000_1000, 0x800, 0x0004_0000, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if !b.ContainsInRAM(0x2000_0000, 0x1000) {
		t.Fatal("full accessible span rejected")
	}
	if b.ContainsInRAM(0x2000_0000, 0x1001) {
		t.Fatal("span past appBreak accepted")
	}
	if b.ContainsInRAM(0x1FFF_FFFF, 4) {
		t.Fatal("span before memoryStart accepted")
	}
	if b.ContainsInRAM(0xFFFF_FFFF, 2) {
		t.Fatal("wrapping span accepted")
	}
	if !b.ContainsInFlash(0x0004_0000, 0x1000) {
		t.Fatal("full flash span rejected")
	}
	if b.ContainsInFlash(0x0004_0FFF, 2) {
		t.Fatal("span past flash end accepted")
	}
}

// Property: any sequence of SetAppBreak/SetKernelBreak calls, regardless
// of argument, leaves the invariants intact (failed calls roll back).
func TestBreaksInvariantPreservationProperty(t *testing.T) {
	f := func(moves []uint32, kinds []bool) bool {
		b, err := NewAppBreaks(0x2000_0000, 0x4000, 0x2000_1000, 0x800, 0, 0x1000)
		if err != nil {
			return false
		}
		for i, mv := range moves {
			target := 0x2000_0000 + mv%0x5000
			if i < len(kinds) && kinds[i] {
				_ = b.SetAppBreak(target)
			} else {
				_ = b.SetKernelBreak(target)
			}
			if b.invariant() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
