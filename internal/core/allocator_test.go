package core

import (
	"strings"
	"testing"
	"testing/quick"

	"ticktock/internal/mpu"
	"ticktock/internal/riscv"
)

const (
	testPoolStart = 0x2000_0000
	testPoolSize  = 0x0002_0000
	testFlashBase = 0x0004_0000
	testFlashSize = 0x1000
)

func newArmAllocator(t *testing.T) (*AppMemoryAllocator[CortexMRegion], *CortexMMPU) {
	t.Helper()
	drv := newCortexDriver()
	return NewAllocator[CortexMRegion](drv, Config{}), drv
}

func allocate(t *testing.T, a *AppMemoryAllocator[CortexMRegion], appSize, kernelSize uint32) {
	t.Helper()
	// Declared total need leaves heap/grant growth room, as TBF headers do.
	minSize := appSize*2 + kernelSize + 4096
	if err := a.AllocateAppMemory(testPoolStart, testPoolSize, minSize, appSize, kernelSize, testFlashBase, testFlashSize); err != nil {
		t.Fatalf("AllocateAppMemory: %v", err)
	}
}

func TestAllocateAppMemoryBasicLayout(t *testing.T) {
	a, _ := newArmAllocator(t)
	allocate(t, a, 4096, 1024)
	b := a.Breaks()
	if b.MemoryStart() < testPoolStart {
		t.Fatalf("memoryStart=0x%x below pool", b.MemoryStart())
	}
	if b.AppBreak()-b.MemoryStart() < 4096 {
		t.Fatalf("accessible %d < requested", b.AppBreak()-b.MemoryStart())
	}
	if b.GrantSize() != 1024 {
		t.Fatalf("grant=%d", b.GrantSize())
	}
	if !(b.AppBreak() < b.KernelBreak()) {
		t.Fatal("invariant broken")
	}
	if err := a.CheckCorrespondence(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateDerivesViewFromHardware(t *testing.T) {
	// The disagreement problem (§3.2): the kernel view must equal the
	// descriptor-reported accessible span exactly.
	a, _ := newArmAllocator(t)
	allocate(t, a, 5000, 512)
	start, end, ok := AccessibleSpan[CortexMRegion](a.Regions()[RAMRegion0], a.Regions()[RAMRegion1])
	if !ok {
		t.Fatal("span broken")
	}
	b := a.Breaks()
	if b.MemoryStart() != start || b.AppBreak() != end {
		t.Fatalf("kernel view [0x%x,0x%x) != hardware view [0x%x,0x%x)",
			b.MemoryStart(), b.AppBreak(), start, end)
	}
}

func TestAllocateRejectsWhenGrantDoesNotFit(t *testing.T) {
	a, _ := newArmAllocator(t)
	err := a.AllocateAppMemory(testPoolStart, 4096, 0, 4096, 2048, testFlashBase, testFlashSize)
	if err == nil {
		t.Fatal("allocation with no room for grant succeeded")
	}
}

func TestAllocateRejectsZeroRequest(t *testing.T) {
	a, _ := newArmAllocator(t)
	if err := a.AllocateAppMemory(testPoolStart, testPoolSize, 0, 0, 512, testFlashBase, testFlashSize); err == nil {
		t.Fatal("zero-size allocation succeeded")
	}
}

func TestAllocateHonorsMinSize(t *testing.T) {
	a, _ := newArmAllocator(t)
	if err := a.AllocateAppMemory(testPoolStart, testPoolSize, 8192, 100, 512, testFlashBase, testFlashSize); err != nil {
		t.Fatal(err)
	}
	b := a.Breaks()
	if b.MemorySize() < 8192 {
		t.Fatalf("minSize not honored: block=%d", b.MemorySize())
	}
	// The initial break covers only the initial need; growth room sits
	// between appBreak and kernelBreak.
	if b.AppBreak()-b.MemoryStart() >= 8192 {
		t.Fatalf("initial break consumed the whole block: %d", b.AppBreak()-b.MemoryStart())
	}
	if b.KernelBreak()-b.AppBreak() < 4096 {
		t.Fatalf("no growth room: %d", b.KernelBreak()-b.AppBreak())
	}
}

func TestBrkGrowShrink(t *testing.T) {
	a, _ := newArmAllocator(t)
	allocate(t, a, 2048, 1024)
	b := a.Breaks()
	origBreak := b.AppBreak()

	// Grow within the slack below the kernel break.
	if err := a.Brk(origBreak + 64); err != nil {
		// Growth may be impossible if the hardware can't add a
		// subregion within kernelBreak; it must then fail cleanly.
		var ae *mpu.AllocateError
		if !asAllocateError(err, &ae) {
			t.Fatalf("Brk grow failed with unexpected error: %v", err)
		}
	} else {
		if b.AppBreak() < origBreak+64 {
			t.Fatalf("break did not grow: 0x%x", b.AppBreak())
		}
		if err := a.CheckCorrespondence(); err != nil {
			t.Fatal(err)
		}
	}

	// Shrink to half.
	target := b.MemoryStart() + (b.AppBreak()-b.MemoryStart())/2
	if err := a.Brk(target); err != nil {
		t.Fatalf("Brk shrink: %v", err)
	}
	if b.AppBreak() < target {
		t.Fatalf("shrink undershot requested break")
	}
	if err := a.CheckCorrespondence(); err != nil {
		t.Fatal(err)
	}
}

func asAllocateError(err error, target **mpu.AllocateError) bool {
	for e := err; e != nil; {
		if ae, ok := e.(*mpu.AllocateError); ok {
			*target = ae
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := e.(unwrapper)
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

func TestBrkValidatesArguments(t *testing.T) {
	// The §2.2 underflow bug: a malicious brk argument must be rejected
	// by validation, never reach region arithmetic.
	a, _ := newArmAllocator(t)
	allocate(t, a, 2048, 1024)
	b := a.Breaks()
	if err := a.Brk(b.MemoryStart() - 4); err == nil {
		t.Fatal("brk below memoryStart accepted")
	}
	if err := a.Brk(b.KernelBreak()); err == nil {
		t.Fatal("brk onto kernelBreak accepted")
	}
	if err := a.Brk(0xFFFF_FFFF); err == nil {
		t.Fatal("brk to top of memory accepted")
	}
	if err := a.CheckCorrespondence(); err != nil {
		t.Fatalf("failed brk corrupted state: %v", err)
	}
}

func TestSbrk(t *testing.T) {
	a, _ := newArmAllocator(t)
	allocate(t, a, 2048, 1024)
	b := a.Breaks()
	cur := b.AppBreak()
	nb, err := a.Sbrk(-512)
	if err != nil {
		t.Fatalf("sbrk shrink: %v", err)
	}
	if nb > cur {
		t.Fatalf("sbrk(-512) grew the break")
	}
	if _, err := a.Sbrk(-1 << 30); err == nil {
		t.Fatal("huge negative sbrk accepted")
	}
}

func TestAllocateGrantShrinksKernelBreak(t *testing.T) {
	a, _ := newArmAllocator(t)
	allocate(t, a, 2048, 1024)
	b := a.Breaks()
	kb0 := b.KernelBreak()
	addr, err := a.AllocateGrant(100)
	if err != nil {
		t.Fatal(err)
	}
	if addr != kb0-104 { // 100 aligned up to 104
		t.Fatalf("grant addr=0x%x, want 0x%x", addr, kb0-104)
	}
	if b.KernelBreak() != addr {
		t.Fatal("kernel break not moved to grant base")
	}
	// Grant never becomes user-accessible: correspondence still holds
	// and the accessible span is unchanged.
	if err := a.CheckCorrespondence(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateGrantExhaustion(t *testing.T) {
	a, _ := newArmAllocator(t)
	allocate(t, a, 2048, 1024)
	for i := 0; ; i++ {
		if _, err := a.AllocateGrant(256); err != nil {
			if i == 0 {
				t.Fatal("first grant failed")
			}
			break
		}
		if i > 10000 {
			t.Fatal("grant allocation never exhausted")
		}
	}
	if err := a.CheckCorrespondence(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigureMPUEndToEnd(t *testing.T) {
	a, drv := newArmAllocator(t)
	allocate(t, a, 4096, 1024)
	if err := a.ConfigureMPU(); err != nil {
		t.Fatal(err)
	}
	b := a.Breaks()
	hw := drv.HW
	// User can write all accessible RAM.
	if !hw.AccessibleUser(b.MemoryStart(), b.AppBreak()-b.MemoryStart(), mpu.AccessWrite) {
		t.Fatal("accessible RAM denied")
	}
	// User can read+execute all flash.
	if !hw.AccessibleUser(b.FlashStart(), b.FlashSize(), mpu.AccessExecute) {
		t.Fatal("flash execute denied")
	}
	// User cannot touch the grant region — the paper's core theorem.
	for addr := b.KernelBreak(); addr < b.MemoryEnd(); addr += 4 {
		if hw.Check(addr, mpu.AccessRead, false) == nil {
			t.Fatalf("grant byte 0x%x user-readable", addr)
		}
	}
	// User cannot touch memory just outside the block.
	if hw.Check(b.MemoryEnd()+64, mpu.AccessRead, false) == nil {
		t.Fatal("past-block access allowed")
	}
	if hw.Check(b.MemoryStart()-4, mpu.AccessWrite, false) == nil {
		t.Fatal("pre-block access allowed")
	}
	// Kernel (privileged) retains access everywhere.
	if hw.Check(b.KernelBreak(), mpu.AccessWrite, true) != nil {
		t.Fatal("kernel denied grant access")
	}
	a.DisableMPU()
	if hw.CtrlEnable {
		t.Fatal("DisableMPU left enforcement on")
	}
}

func TestUserCanAccess(t *testing.T) {
	a, _ := newArmAllocator(t)
	allocate(t, a, 2048, 1024)
	b := a.Breaks()
	if !a.UserCanAccess(b.MemoryStart(), 100, mpu.AccessWrite) {
		t.Fatal("RAM write denied")
	}
	if a.UserCanAccess(b.KernelBreak(), 4, mpu.AccessRead) {
		t.Fatal("grant read allowed")
	}
	if !a.UserCanAccess(testFlashBase, 16, mpu.AccessRead) {
		t.Fatal("flash read denied")
	}
	if a.UserCanAccess(testFlashBase, 16, mpu.AccessWrite) {
		t.Fatal("flash write allowed")
	}
	if !a.UserCanAccess(testFlashBase, 16, mpu.AccessExecute) {
		t.Fatal("flash execute denied")
	}
	if a.UserCanAccess(b.MemoryStart(), 100, mpu.AccessExecute) {
		t.Fatal("RAM execute allowed")
	}
}

func TestPaddingConfig(t *testing.T) {
	plain := NewAllocator[CortexMRegion](newCortexDriver(), Config{})
	padded := NewAllocator[CortexMRegion](newCortexDriver(), Config{Padding: 412})
	for _, a := range []*AppMemoryAllocator[CortexMRegion]{plain, padded} {
		if err := a.AllocateAppMemory(testPoolStart, testPoolSize, 0, 4096, 1024, testFlashBase, testFlashSize); err != nil {
			t.Fatal(err)
		}
	}
	if padded.Breaks().MemorySize() != plain.Breaks().MemorySize()+412 {
		t.Fatalf("padding not applied: %d vs %d", padded.Breaks().MemorySize(), plain.Breaks().MemorySize())
	}
}

// --- RISC-V: same generic allocator code over the PMP driver ---

func newPMPAllocator(t *testing.T, chip riscv.ChipConfig) (*AppMemoryAllocator[PMPRegion], *PMPMPU) {
	t.Helper()
	drv := NewPMPMPU(riscv.NewPMP(chip))
	return NewAllocator[PMPRegion](drv, Config{}), drv
}

func TestAllocatorGenericOverPMPAllChips(t *testing.T) {
	for _, chip := range riscv.Chips {
		t.Run(chip.Name, func(t *testing.T) {
			a, drv := newPMPAllocator(t, chip)
			flashSize := uint32(testFlashSize)
			if err := a.AllocateAppMemory(0x8000_0000, 0x2_0000, 0, 4096, 1024, 0x2000_0000, flashSize); err != nil {
				t.Fatalf("AllocateAppMemory on %s: %v", chip.Name, err)
			}
			if err := a.CheckCorrespondence(); err != nil {
				t.Fatal(err)
			}
			if err := a.ConfigureMPU(); err != nil {
				t.Fatal(err)
			}
			b := a.Breaks()
			hw := drv.HW
			if !hw.AccessibleUser(b.MemoryStart(), b.AppBreak()-b.MemoryStart(), mpu.AccessWrite) {
				t.Fatal("accessible RAM denied")
			}
			if hw.Check(b.KernelBreak(), mpu.AccessRead, false) == nil {
				t.Fatal("grant user-readable")
			}
			if !hw.AccessibleUser(0x2000_0000, flashSize, mpu.AccessExecute) {
				t.Fatal("flash execute denied")
			}
			// brk round trip.
			if err := a.Brk(b.MemoryStart() + 100); err != nil {
				t.Fatalf("brk: %v", err)
			}
			if err := a.CheckCorrespondence(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPMPSingleRAMRegion(t *testing.T) {
	// Paper §6.2: one RAM region on RISC-V vs two on Cortex-M.
	a, _ := newPMPAllocator(t, riscv.ChipHiFive1)
	if err := a.AllocateAppMemory(0x8000_0000, 0x2_0000, 0, 12000, 1024, 0x2000_0000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if a.Regions()[RAMRegion1].IsSet() {
		t.Fatal("PMP allocation used two RAM regions")
	}
}

// Property: over random allocation parameters, a successful allocation
// always satisfies the correspondence invariants and never lets the
// configured hardware admit a user access to the grant region or outside
// the block. Exercised on both architectures.
func TestAllocatorIsolationProperty(t *testing.T) {
	f := func(appSel, kernelSel uint16, padSel uint8) bool {
		appSize := uint32(appSel)%10000 + 1
		kernelSize := uint32(kernelSel)%2000 + 8
		cfg := Config{Padding: uint32(padSel)}

		armDrv := newCortexDriver()
		arm := NewAllocator[CortexMRegion](armDrv, cfg)
		if err := arm.AllocateAppMemory(testPoolStart, testPoolSize, 0, appSize, kernelSize, testFlashBase, testFlashSize); err == nil {
			if err := arm.CheckCorrespondence(); err != nil {
				return false
			}
			if err := arm.ConfigureMPU(); err != nil {
				return false
			}
			b := arm.Breaks()
			for addr := b.KernelBreak(); addr < b.MemoryEnd(); addr += 16 {
				if armDrv.HW.Check(addr, mpu.AccessRead, false) == nil {
					return false
				}
			}
			if armDrv.HW.Check(b.MemoryEnd(), mpu.AccessWrite, false) == nil {
				return false
			}
		}

		pmpDrv := NewPMPMPU(riscv.NewPMP(riscv.ChipLiteX))
		pmp := NewAllocator[PMPRegion](pmpDrv, cfg)
		if err := pmp.AllocateAppMemory(0x8000_0000, 0x4_0000, 0, appSize, kernelSize, 0x2000_0000, 0x1000); err == nil {
			if err := pmp.CheckCorrespondence(); err != nil {
				return false
			}
			if err := pmp.ConfigureMPU(); err != nil {
				return false
			}
			b := pmp.Breaks()
			for addr := b.KernelBreak(); addr < b.MemoryEnd(); addr += 16 {
				if pmpDrv.HW.Check(addr, mpu.AccessRead, false) == nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: any sequence of brk/grant operations preserves correspondence.
func TestAllocatorOperationSequenceProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		a := NewAllocator[CortexMRegion](newCortexDriver(), Config{})
		if err := a.AllocateAppMemory(testPoolStart, testPoolSize, 0, 4096, 2048, testFlashBase, testFlashSize); err != nil {
			return false
		}
		b := a.Breaks()
		for _, op := range ops {
			switch op % 3 {
			case 0:
				_ = a.Brk(b.MemoryStart() + uint32(op)%0x3000)
			case 1:
				_, _ = a.AllocateGrant(uint32(op) % 300)
			case 2:
				_, _ = a.Sbrk(int32(op%200) - 100)
			}
			if err := a.CheckCorrespondence(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateErrorMessages(t *testing.T) {
	a, _ := newArmAllocator(t)
	err := a.AllocateAppMemory(testPoolStart, 64, 0, 100000, 512, testFlashBase, testFlashSize)
	if err == nil || !strings.Contains(err.Error(), "allocation failed") {
		t.Fatalf("err=%v", err)
	}
}
