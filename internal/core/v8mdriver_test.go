package core

import (
	"testing"
	"testing/quick"

	"ticktock/internal/armv8m"
	"ticktock/internal/mpu"
)

func newV8MAllocator() (*AppMemoryAllocator[V8MRegion], *V8MMPU) {
	drv := NewV8MMPU(armv8m.NewMPUHardware())
	return NewAllocator[V8MRegion](drv, Config{}), drv
}

func TestV8MRegionDecoding(t *testing.T) {
	r := newV8MRegion(1, 0x2000_0040, 0x200, mpu.ReadWriteOnly)
	if !r.IsSet() || r.RegionID() != 1 {
		t.Fatalf("region=%+v", r)
	}
	s, _ := r.Start()
	sz, _ := r.Size()
	if s != 0x2000_0040 || sz != 0x200 {
		t.Fatalf("span=0x%x+0x%x", s, sz)
	}
	if !r.AllowsPermissions(mpu.ReadWriteOnly) || r.AllowsPermissions(mpu.ReadExecuteOnly) {
		t.Fatal("perm decode wrong")
	}
	if !r.Overlaps(0x2000_0100, 0x2000_0101) || r.Overlaps(0x2000_0240, 0x2000_0300) {
		t.Fatal("overlap decode wrong")
	}
}

func TestV8MHardwareRejectsOverlappingRegions(t *testing.T) {
	hw := armv8m.NewMPUHardware()
	r1 := newV8MRegion(0, 0x2000_0000, 0x100, mpu.ReadWriteOnly)
	r2 := newV8MRegion(1, 0x2000_00E0, 0x100, mpu.ReadOnly) // overlaps r1
	if err := hw.WriteRegion(0, r1.rbar, r1.rlar); err != nil {
		t.Fatal(err)
	}
	if err := hw.WriteRegion(1, r2.rbar, r2.rlar); err == nil {
		t.Fatal("overlapping region accepted")
	}
	// Adjacent is fine.
	r3 := newV8MRegion(1, 0x2000_0100, 0x100, mpu.ReadOnly)
	if err := hw.WriteRegion(1, r3.rbar, r3.rlar); err != nil {
		t.Fatal(err)
	}
}

func TestV8MGenericAllocatorEndToEnd(t *testing.T) {
	// The unchanged generic allocator over the v8-M driver: allocate,
	// check correspondence, configure, probe the hardware, brk, grant.
	a, drv := newV8MAllocator()
	if err := a.AllocateAppMemory(0x2000_0000, 0x2_0000, 12000, 4096, 1024, 0x0008_0000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckCorrespondence(); err != nil {
		t.Fatal(err)
	}
	if err := a.ConfigureMPU(); err != nil {
		t.Fatal(err)
	}
	b := a.Breaks()
	hw := drv.HW
	if !hw.AccessibleUser(b.MemoryStart(), b.AppBreak()-b.MemoryStart(), mpu.AccessWrite) {
		t.Fatal("accessible RAM denied")
	}
	if hw.Check(b.KernelBreak(), mpu.AccessRead, false) == nil {
		t.Fatal("grant user-readable")
	}
	if !hw.AccessibleUser(0x0008_0000, 0x1000, mpu.AccessExecute) {
		t.Fatal("flash execute denied")
	}
	// v8-M allocates to the exact 32-byte granule: accessible equals the
	// request rounded to 32.
	if got := b.AppBreak() - b.MemoryStart(); got != 4096 {
		t.Fatalf("accessible=%d, want exactly 4096 (no pow2 rounding)", got)
	}
	// brk + grant still work through the same generic paths.
	if err := a.Brk(b.MemoryStart() + 5000); err != nil {
		t.Fatalf("brk: %v", err)
	}
	if err := a.CheckCorrespondence(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocateGrant(64); err != nil {
		t.Fatalf("grant: %v", err)
	}
	if err := a.ConfigureMPU(); err != nil {
		t.Fatal(err)
	}
	if hw.Check(a.Breaks().KernelBreak(), mpu.AccessWrite, false) == nil {
		t.Fatal("grown grant user-writable")
	}
}

func TestV8MSingleRAMRegion(t *testing.T) {
	a, _ := newV8MAllocator()
	if err := a.AllocateAppMemory(0x2000_0000, 0x2_0000, 0, 9000, 512, 0x0008_0000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if a.Regions()[RAMRegion1].IsSet() {
		t.Fatal("v8-M used two RAM regions")
	}
}

func TestV8MExactRegionValidation(t *testing.T) {
	drv := NewV8MMPU(armv8m.NewMPUHardware())
	if _, ok := drv.NewExactRegion(2, 0x0008_0010, 0x100, mpu.ReadExecuteOnly); ok {
		t.Fatal("misaligned base accepted")
	}
	if _, ok := drv.NewExactRegion(2, 0x0008_0000, 0x101, mpu.ReadExecuteOnly); ok {
		t.Fatal("misaligned size accepted")
	}
	if _, ok := drv.NewExactRegion(2, 0x0008_0000, 0x100, mpu.ReadExecuteOnly); !ok {
		t.Fatal("aligned exact region rejected")
	}
}

// Property: the same isolation property as the other drivers — a
// successful allocation never lets a user access reach the grant region
// or beyond the block, as checked against the v8-M hardware model.
func TestV8MIsolationProperty(t *testing.T) {
	f := func(appSel, kernelSel uint16) bool {
		appSize := uint32(appSel)%10000 + 1
		kernelSize := uint32(kernelSel)%2000 + 8
		a, drv := newV8MAllocator()
		if err := a.AllocateAppMemory(0x2000_0000, 0x4_0000, appSize*2+kernelSize+4096, appSize, kernelSize, 0x0008_0000, 0x1000); err != nil {
			return true
		}
		if err := a.CheckCorrespondence(); err != nil {
			return false
		}
		if err := a.ConfigureMPU(); err != nil {
			return false
		}
		b := a.Breaks()
		for addr := b.KernelBreak(); addr < b.MemoryEnd(); addr += 16 {
			if drv.HW.Check(addr, mpu.AccessRead, false) == nil {
				return false
			}
		}
		return drv.HW.Check(b.MemoryEnd(), mpu.AccessWrite, false) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
