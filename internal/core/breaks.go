package core

import (
	"fmt"

	"ticktock/internal/verify"
)

// AppBreaks is the kernel's logical view of one process's memory layout
// (paper Figure 6). The fields are unexported so that every construction
// and mutation flows through checked paths; the three paper invariants
//
//	kernelBreak <= memoryStart + memorySize
//	memoryStart <= appBreak
//	appBreak    <  kernelBreak
//
// are verified at every such path, which is the runtime analogue of Flux
// checking them wherever an AppBreaks is created or updated.
type AppBreaks struct {
	memoryStart uint32
	memorySize  uint32
	appBreak    uint32
	kernelBreak uint32
	flashStart  uint32
	flashSize   uint32
}

// invariant evaluates the paper's three clauses plus basic well-formedness
// (no 32-bit wraparound), returning the first violated clause.
func (b *AppBreaks) invariant() error {
	if uint64(b.memoryStart)+uint64(b.memorySize) > 1<<32 {
		return &verify.ContractError{Site: "AppBreaks", Clause: "memoryStart+memorySize fits", Detail: fmt.Sprintf("0x%x+0x%x wraps", b.memoryStart, b.memorySize)}
	}
	if !(b.kernelBreak <= b.memoryStart+b.memorySize) {
		return &verify.ContractError{Site: "AppBreaks", Clause: "kernelBreak <= memoryStart+memorySize", Detail: fmt.Sprintf("kernelBreak=0x%x end=0x%x", b.kernelBreak, b.memoryStart+b.memorySize)}
	}
	if !(b.memoryStart <= b.appBreak) {
		return &verify.ContractError{Site: "AppBreaks", Clause: "memoryStart <= appBreak", Detail: fmt.Sprintf("memoryStart=0x%x appBreak=0x%x", b.memoryStart, b.appBreak)}
	}
	if !(b.appBreak < b.kernelBreak) {
		return &verify.ContractError{Site: "AppBreaks", Clause: "appBreak < kernelBreak", Detail: fmt.Sprintf("appBreak=0x%x kernelBreak=0x%x", b.appBreak, b.kernelBreak)}
	}
	if uint64(b.flashStart)+uint64(b.flashSize) > 1<<32 {
		return &verify.ContractError{Site: "AppBreaks", Clause: "flash fits", Detail: fmt.Sprintf("0x%x+0x%x wraps", b.flashStart, b.flashSize)}
	}
	return nil
}

// NewAppBreaks constructs a checked AppBreaks. kernelBreak is placed so
// that the top kernelSize bytes of the memory block form the grant region.
func NewAppBreaks(memoryStart, memorySize, appBreak, kernelSize, flashStart, flashSize uint32) (AppBreaks, error) {
	if uint64(kernelSize) > uint64(memorySize) {
		return AppBreaks{}, &verify.ContractError{Site: "NewAppBreaks", Clause: "kernelSize <= memorySize", Detail: fmt.Sprintf("kernelSize=%d memorySize=%d", kernelSize, memorySize)}
	}
	b := AppBreaks{
		memoryStart: memoryStart,
		memorySize:  memorySize,
		appBreak:    appBreak,
		kernelBreak: memoryStart + memorySize - kernelSize,
		flashStart:  flashStart,
		flashSize:   flashSize,
	}
	if err := b.invariant(); err != nil {
		return AppBreaks{}, err
	}
	return b, nil
}

// MemoryStart returns the lowest address of the process memory block.
func (b *AppBreaks) MemoryStart() uint32 { return b.memoryStart }

// MemorySize returns the total size of the process memory block,
// including the kernel-owned grant region.
func (b *AppBreaks) MemorySize() uint32 { return b.memorySize }

// MemoryEnd returns the first address past the process memory block.
func (b *AppBreaks) MemoryEnd() uint32 { return b.memoryStart + b.memorySize }

// AppBreak returns the first address past the process-accessible RAM.
func (b *AppBreaks) AppBreak() uint32 { return b.appBreak }

// KernelBreak returns the lowest address of the kernel-owned grant region.
func (b *AppBreaks) KernelBreak() uint32 { return b.kernelBreak }

// FlashStart returns the base of the process code region in flash.
func (b *AppBreaks) FlashStart() uint32 { return b.flashStart }

// FlashSize returns the size of the process code region.
func (b *AppBreaks) FlashSize() uint32 { return b.flashSize }

// GrantSize returns the size of the kernel-owned grant region.
func (b *AppBreaks) GrantSize() uint32 { return b.MemoryEnd() - b.kernelBreak }

// SetAppBreak moves the end of process-accessible memory (brk). The
// invariants reject any break at or past the kernel break — the exact
// check whose absence caused the paper's §2.2 underflow bug.
func (b *AppBreaks) SetAppBreak(newBreak uint32) error {
	nb := *b
	nb.appBreak = newBreak
	if err := nb.invariant(); err != nil {
		return err
	}
	*b = nb
	return nil
}

// SetKernelBreak moves the start of the grant region downward (grant
// allocation grows the grant region toward the heap).
func (b *AppBreaks) SetKernelBreak(newKernelBreak uint32) error {
	nb := *b
	nb.kernelBreak = newKernelBreak
	if err := nb.invariant(); err != nil {
		return err
	}
	*b = nb
	return nil
}

// ContainsInRAM reports whether [start, start+size) lies entirely within
// the process-accessible RAM [memoryStart, appBreak). Used to validate
// user-supplied buffer addresses (allow syscalls).
func (b *AppBreaks) ContainsInRAM(start, size uint32) bool {
	end := uint64(start) + uint64(size)
	return start >= b.memoryStart && end <= uint64(b.appBreak)
}

// ContainsInFlash reports whether [start, start+size) lies entirely within
// the process flash region.
func (b *AppBreaks) ContainsInFlash(start, size uint32) bool {
	end := uint64(start) + uint64(size)
	return start >= b.flashStart && end <= uint64(b.flashStart)+uint64(b.flashSize)
}

// String formats the layout for fault reports and the memory-layout tests.
func (b *AppBreaks) String() string {
	return fmt.Sprintf("mem=[0x%08x,0x%08x) appBreak=0x%08x kernelBreak=0x%08x flash=[0x%08x,0x%08x)",
		b.memoryStart, b.MemoryEnd(), b.appBreak, b.kernelBreak, b.flashStart, b.flashStart+b.flashSize)
}
