package core

import (
	"fmt"

	"ticktock/internal/cycles"
	"ticktock/internal/mpu"
	"ticktock/internal/verify"
)

// GrantAlign is the alignment of grant allocations and of the kernel
// break. Eight bytes satisfies the strictest Tock grant type alignment.
const GrantAlign = 8

// minBreakSlack separates the app break from the kernel break so the
// strict appBreak < kernelBreak invariant always has room. It also absorbs
// accessible-size overshoot from hardware granularity.
const minBreakSlack = GrantAlign

// Config adjusts allocator policy knobs that the paper's §6.2 evaluation
// varies.
type Config struct {
	// Padding adds extra bytes between the app break and the kernel
	// break at allocation time. The paper's "configure TickTock to add
	// padding" run uses this to match Tock's total allocation.
	Padding uint32
	// Meter, when non-nil, is charged the instrumented cycle costs of
	// every allocator operation (Figure 11).
	Meter *cycles.Meter
}

// AppMemoryAllocator owns the per-process protection state: the logical
// view (AppBreaks) and the hardware view (the region array), kept in exact
// correspondence (paper §4.3). It is generic over the architecture's
// region descriptor; the same allocation code runs on Cortex-M and RISC-V,
// which is the point of the granular redesign.
type AppMemoryAllocator[R RegionDescriptor] struct {
	hw      MPU[R]
	breaks  AppBreaks
	regions []R
	cfg     Config
}

// NewAllocator returns an allocator bound to an MPU driver with all
// regions unset.
func NewAllocator[R RegionDescriptor](hw MPU[R], cfg Config) *AppMemoryAllocator[R] {
	regions := make([]R, hw.NumRegions())
	for i := range regions {
		regions[i] = hw.UnsetRegion(i)
	}
	return &AppMemoryAllocator[R]{hw: hw, regions: regions, cfg: cfg}
}

// Breaks returns the current logical layout.
func (a *AppMemoryAllocator[R]) Breaks() *AppBreaks { return &a.breaks }

// Regions returns the hardware region set (aliased, not copied).
func (a *AppMemoryAllocator[R]) Regions() []R { return a.regions }

// charge adds instrumented cycles when a meter is configured.
func (a *AppMemoryAllocator[R]) charge(n uint64) { a.cfg.Meter.Add(n) }

// AllocateAppMemory is the hardware-agnostic process allocator (paper
// Figure 4a→4b, TickTock side). It asks the MPU driver for up to two
// contiguous RAM regions making the app's initial need (appSize)
// accessible — with hardware capacity reserved to grow toward the block's
// eventual size — then derives the logical layout *from the returned
// descriptors* (so the kernel view and the hardware view cannot disagree),
// places the kernel-owned grant region at the top of the block, and
// creates the flash code region.
//
// minSize is the process's declared total memory need (heap growth room
// plus grants), as Tock reads from the TBF header; appSize is the
// initially-accessible portion (stack + data + initial heap).
func (a *AppMemoryAllocator[R]) AllocateAppMemory(
	unallocStart, unallocSize uint32,
	minSize, appSize, kernelSize uint32,
	flashStart, flashSize uint32,
) error {
	a.charge(cycles.Call + 2*cycles.ALU)
	if appSize == 0 {
		return mpu.ErrHeap("zero-size request")
	}
	// The app-usable capacity: the declared total need minus the grant
	// region (saturating), but at least the initial request. Unlike the
	// monolithic baseline, the block is sized to this exact need rather
	// than rounded to a hardware power of two — the reason TickTock's
	// total allocation in §6.2 is 7,780 bytes against Tock's 8,192.
	capacity := appSize
	if minSize > kernelSize && minSize-kernelSize > capacity {
		capacity = minSize - kernelSize
	}

	r0, r1, ok := a.hw.NewRegions(MaxRAMRegionNumber, unallocStart, unallocSize, appSize, capacity, mpu.ReadWriteOnly)
	if !ok {
		return mpu.ErrHeap(fmt.Sprintf("no region pair for %d/%d bytes in [0x%x,+0x%x)", appSize, capacity, unallocStart, unallocSize))
	}

	// Compute the actual start and accessible end exactly as hardware
	// will enforce them (paper Fig 4b lines 22–28).
	start, accessEnd, ok := AccessibleSpan[R](r0, r1)
	a.charge(2 * cycles.Load)
	if !ok {
		return mpu.ErrHeap("driver returned non-contiguous regions")
	}

	// Size the block exactly: the usable capacity (or the accessible
	// span, whichever the hardware made larger) plus alignment slack
	// and the grant region. No power-of-two rounding.
	accessible := accessEnd - start
	slack := verify.AlignUp(accessEnd, GrantAlign) - accessEnd + minBreakSlack
	memSize := max(capacity, accessible) + slack + kernelSize + a.cfg.Padding
	memEnd64 := uint64(start) + uint64(memSize)
	a.charge(4 * cycles.ALU)
	if memEnd64 > uint64(unallocStart)+uint64(unallocSize) {
		return mpu.ErrHeap(fmt.Sprintf("memory block of %d bytes does not fit at 0x%x", memSize, start))
	}

	breaks, err := NewAppBreaks(start, memSize, accessEnd, kernelSize, flashStart, flashSize)
	if err != nil {
		return err
	}

	flashRegion, ok := a.hw.NewExactRegion(FlashRegionNumber, flashStart, flashSize, mpu.ReadExecuteOnly)
	if !ok {
		return mpu.ErrFlash(fmt.Sprintf("cannot cover [0x%x,+0x%x) exactly", flashStart, flashSize))
	}

	a.breaks = breaks
	a.regions[RAMRegion0] = r0
	a.regions[RAMRegion1] = r1
	a.regions[FlashRegionNumber] = flashRegion
	a.charge(3 * cycles.Store)
	return a.CheckCorrespondence()
}

// Brk moves the end of process-accessible memory to newBreak (the brk
// syscall). The argument is validated against the logical layout *before*
// any arithmetic — the validation whose absence let the paper's §2.2
// underflow bug crash the kernel.
func (a *AppMemoryAllocator[R]) Brk(newBreak uint32) error {
	a.charge(cycles.Call)
	b := &a.breaks
	if err := verify.Require(newBreak >= b.memoryStart, "brk", "newBreak >= memoryStart",
		"newBreak=0x%x memoryStart=0x%x", newBreak, b.memoryStart); err != nil {
		return err
	}
	if err := verify.Require(newBreak < b.kernelBreak, "brk", "newBreak < kernelBreak",
		"newBreak=0x%x kernelBreak=0x%x", newBreak, b.kernelBreak); err != nil {
		return err
	}
	a.charge(2 * cycles.ALU)

	totalSize := newBreak - b.memoryStart
	if totalSize == 0 {
		totalSize = 1 // keep at least one accessible byte so regions stay set
	}
	availableSize := b.kernelBreak - b.memoryStart - 1
	r0, r1, ok := a.hw.UpdateRegions(a.regions[RAMRegion0], a.regions[RAMRegion1],
		b.memoryStart, availableSize, totalSize, mpu.ReadWriteOnly)
	if !ok {
		return mpu.ErrHeap(fmt.Sprintf("cannot cover %d bytes within %d available", totalSize, availableSize))
	}
	start, accessEnd, spanOK := AccessibleSpan[R](r0, r1)
	a.charge(2 * cycles.Load)
	if !spanOK || start != b.memoryStart {
		return mpu.ErrHeap("updated regions moved the memory start")
	}
	if err := b.SetAppBreak(accessEnd); err != nil {
		return err
	}
	a.regions[RAMRegion0] = r0
	a.regions[RAMRegion1] = r1
	a.charge(2 * cycles.Store)
	return a.CheckCorrespondence()
}

// Sbrk grows (or shrinks, for negative delta) the app break by delta bytes
// and returns the new break.
func (a *AppMemoryAllocator[R]) Sbrk(delta int32) (uint32, error) {
	cur := a.breaks.AppBreak()
	nb := uint64(cur) + uint64(int64(delta))
	if int64(cur)+int64(delta) < 0 || nb > 1<<32-1 {
		return 0, verify.Require(false, "sbrk", "break in address space", "delta=%d from 0x%x", delta, cur)
	}
	if err := a.Brk(uint32(nb)); err != nil {
		return 0, err
	}
	return a.breaks.AppBreak(), nil
}

// AllocateGrant carves size bytes (GrantAlign-aligned) off the top of the
// process-accessible gap below the current kernel break and returns the
// new grant's base address.
//
// Unlike Tock's monolithic path, no MPU reconfiguration is needed: the
// grant region was never user-accessible (it sits above the accessible
// span, in disabled subregions or past the enabled footprint), so moving
// the kernel break downward cannot widen user access. This is the
// structural reason TickTock's allocate_grant is ~2× faster (Figure 11).
func (a *AppMemoryAllocator[R]) AllocateGrant(size uint32) (uint32, error) {
	a.charge(cycles.Call + 3*cycles.ALU)
	b := &a.breaks
	aligned := verify.AlignUp(size, GrantAlign)
	if aligned < size { // overflow on align
		return 0, verify.Require(false, "allocate_grant", "size alignable", "size=%d", size)
	}
	if uint64(aligned) >= uint64(b.kernelBreak)-uint64(b.appBreak) {
		return 0, mpu.ErrHeap(fmt.Sprintf("grant of %d bytes does not fit below kernel break 0x%x", aligned, b.kernelBreak))
	}
	newKB := b.kernelBreak - aligned
	if err := b.SetKernelBreak(newKB); err != nil {
		return 0, err
	}
	a.charge(cycles.Store)
	return newKB, nil
}

// ConfigureMPU pushes the current region set to the hardware and enables
// enforcement. Called on every context switch into the process.
func (a *AppMemoryAllocator[R]) ConfigureMPU() error {
	return a.hw.ConfigureMPU(a.regions)
}

// DisableMPU turns enforcement off for kernel execution.
func (a *AppMemoryAllocator[R]) DisableMPU() { a.hw.DisableMPU() }

// CheckCorrespondence verifies the paper's §4.3 logical↔hardware
// correspondence invariants against the current state:
//
//	can_access_flash:  the flash region grants r-x over exactly the
//	                   process code span and nothing outside it;
//	can_access_ram:    the RAM region pair grants rw- over exactly
//	                   [memoryStart, appBreak) and nothing outside it;
//	cannot_access_other: no other region overlaps the process memory
//	                   block, and nothing overlaps the grant region.
func (a *AppMemoryAllocator[R]) CheckCorrespondence() error {
	b := &a.breaks
	flashEnd := b.flashStart + b.flashSize

	// can_access_flash
	fr := a.regions[FlashRegionNumber]
	if !CanAccess(fr, b.flashStart, flashEnd, mpu.ReadExecuteOnly) {
		return &verify.ContractError{Site: "correspondence", Clause: "can_access_flash",
			Detail: fmt.Sprintf("flash region does not cover [0x%x,0x%x) r-x", b.flashStart, flashEnd)}
	}
	if b.flashStart > 0 && fr.Overlaps(0, b.flashStart) || fr.Overlaps(flashEnd, 0xFFFF_FFFF) {
		return &verify.ContractError{Site: "correspondence", Clause: "can_access_flash",
			Detail: "flash region grants access outside the code span"}
	}

	// can_access_ram
	start, accessEnd, ok := AccessibleSpan[R](a.regions[RAMRegion0], a.regions[RAMRegion1])
	if !ok || start != b.memoryStart || accessEnd != b.appBreak {
		return &verify.ContractError{Site: "correspondence", Clause: "can_access_ram",
			Detail: fmt.Sprintf("accessible span [0x%x,0x%x) != logical [0x%x,0x%x)", start, accessEnd, b.memoryStart, b.appBreak)}
	}
	for _, id := range []int{RAMRegion0, RAMRegion1} {
		r := a.regions[id]
		if r.IsSet() && !r.AllowsPermissions(mpu.ReadWriteOnly) {
			return &verify.ContractError{Site: "correspondence", Clause: "can_access_ram",
				Detail: fmt.Sprintf("region %d permissions are not rw-", id)}
		}
		if r.Overlaps(b.kernelBreak, b.MemoryEnd()) {
			return &verify.ContractError{Site: "correspondence", Clause: "can_access_ram",
				Detail: fmt.Sprintf("region %d grants access into the grant region [0x%x,0x%x)", id, b.kernelBreak, b.MemoryEnd())}
		}
	}

	// cannot_access_other
	for i, r := range a.regions {
		if i == RAMRegion0 || i == RAMRegion1 {
			continue
		}
		if r.Overlaps(b.memoryStart, b.MemoryEnd()) {
			return &verify.ContractError{Site: "correspondence", Clause: "cannot_access_other",
				Detail: fmt.Sprintf("region %d overlaps the process memory block", i)}
		}
	}
	return nil
}

// UserCanAccess reports whether the logical layout grants the process the
// given access to every byte of [start, start+size). Reads are allowed in
// flash and accessible RAM; writes only in accessible RAM.
func (a *AppMemoryAllocator[R]) UserCanAccess(start, size uint32, kind mpu.AccessKind) bool {
	switch kind {
	case mpu.AccessWrite:
		return a.breaks.ContainsInRAM(start, size)
	case mpu.AccessRead:
		return a.breaks.ContainsInRAM(start, size) || a.breaks.ContainsInFlash(start, size)
	case mpu.AccessExecute:
		return a.breaks.ContainsInFlash(start, size)
	default:
		return false
	}
}

// MapIPCRegion installs an extra hardware region (id >=
// FirstIPCRegionNumber) granting this process access to [start,
// start+size) — another process's shared span, Tock's MPU-mediated IPC.
// The span must not overlap this process's own memory block (that would
// let an IPC mapping silently widen the process's own grant access), and
// the hardware must be able to represent it exactly.
func (a *AppMemoryAllocator[R]) MapIPCRegion(id int, start, size uint32, perms mpu.Permissions) error {
	a.charge(cycles.Call + 2*cycles.ALU)
	if id < FirstIPCRegionNumber || id >= len(a.regions) {
		return verify.Require(false, "map_ipc_region", "ipc region id", "id=%d", id)
	}
	b := &a.breaks
	end := uint64(start) + uint64(size)
	if start < b.MemoryEnd() && uint64(b.memoryStart) < end {
		return verify.Require(false, "map_ipc_region", "no overlap with own block",
			"span [0x%x,0x%x) overlaps [0x%x,0x%x)", start, end, b.memoryStart, b.MemoryEnd())
	}
	region, ok := a.hw.NewExactRegion(id, start, size, perms)
	if !ok {
		return mpu.ErrHeap(fmt.Sprintf("ipc span [0x%x,+0x%x) not representable", start, size))
	}
	a.regions[id] = region
	return a.CheckCorrespondence()
}

// UnmapIPCRegion removes a previously mapped IPC region.
func (a *AppMemoryAllocator[R]) UnmapIPCRegion(id int) error {
	if id < FirstIPCRegionNumber || id >= len(a.regions) {
		return verify.Require(false, "unmap_ipc_region", "ipc region id", "id=%d", id)
	}
	a.regions[id] = a.hw.UnsetRegion(id)
	return a.CheckCorrespondence()
}
