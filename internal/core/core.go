// Package core implements the TickTock paper's primary contribution: the
// granular MPU abstraction (§3.5) and the formally-specified process memory
// accounting built on it (§4.2–§4.4).
//
// The design separates two concerns the original Tock kernel entangled:
//
//   - RegionDescriptor abstractly characterizes one hardware-enforced
//     region — just an accessible start, size and permission set — hiding
//     all alignment, power-of-two and subregion detail.
//   - MPU creates and updates regions under the hardware's constraints and
//     pushes a finished region set to the silicon.
//
// On top of those two interfaces, AppBreaks records the kernel's logical
// view of a process's memory (with the paper's three invariants checked on
// every construction and update), and AppMemoryAllocator keeps the logical
// view and the hardware view in exact correspondence (the paper's
// can_access_flash / can_access_ram / cannot_access_other invariants).
// Everything here is generic over the architecture; the Cortex-M and
// RISC-V PMP drivers live in cortexm.go and pmpdriver.go.
package core

import (
	"ticktock/internal/mpu"
)

// Region numbering convention, matching the Tock Cortex-M port: the two
// lowest-numbered regions cover process RAM so that higher-numbered
// regions (IPC, flash) take hardware priority over them on ARM.
const (
	// RAMRegion0 and RAMRegion1 cover the process stack/data/heap.
	RAMRegion0 = 0
	RAMRegion1 = 1
	// MaxRAMRegionNumber is the highest region id reserved for RAM.
	MaxRAMRegionNumber = RAMRegion1
	// FlashRegionNumber covers the process code in flash.
	FlashRegionNumber = 2
	// FirstIPCRegionNumber is where shared/IPC regions start.
	FirstIPCRegionNumber = 3
)

// RegionDescriptor abstractly characterizes a single contiguous
// hardware-enforced memory region (paper Figure 5). Implementations decode
// every answer from the raw hardware register values they carry, so the
// descriptor *is* the hardware view: there is no second copy of the layout
// to fall out of sync.
//
// An unset descriptor (IsSet() == false) enforces nothing and reports no
// start or size.
type RegionDescriptor interface {
	// IsSet reports whether the region is enabled in hardware.
	IsSet() bool
	// Start returns the first user-accessible address of the region.
	// ok is false for unset regions.
	Start() (addr uint32, ok bool)
	// Size returns the user-accessible size in bytes (for subregioned
	// ARM regions this is the enabled prefix, not the full footprint).
	Size() (size uint32, ok bool)
	// Overlaps reports whether any user-accessible byte of the region
	// falls within [start, end).
	Overlaps(start, end uint32) bool
	// AllowsPermissions reports whether the region grants exactly the
	// given logical permission set (the paper's matches refinement).
	AllowsPermissions(p mpu.Permissions) bool
	// RegionID returns the hardware region number the descriptor
	// configures.
	RegionID() int
}

// CanAccess is the paper's final associated refinement can_access: the
// region is set, spans exactly [start, end), and matches perms.
func CanAccess(r RegionDescriptor, start, end uint32, perms mpu.Permissions) bool {
	if !r.IsSet() {
		return false
	}
	s, ok := r.Start()
	if !ok {
		return false
	}
	sz, ok := r.Size()
	if !ok {
		return false
	}
	return s == start && s+sz == end && r.AllowsPermissions(perms)
}

// MPU is the granular hardware abstraction (paper Figure 3b). The methods
// are oblivious to process layout; they deal exclusively in hardware
// regions. R is the architecture's region descriptor type.
//
// One deliberate deviation from the paper's trait signature: UpdateRegions
// receives the existing region pair instead of re-deriving the underlying
// hardware block from scratch. The hardware footprint chosen at allocation
// time (e.g. the Cortex-M power-of-two region size) is not recoverable
// from the accessible start/size alone, and threading it through the
// descriptors keeps the kernel code hardware-agnostic all the same.
type MPU[R RegionDescriptor] interface {
	// NumRegions returns how many hardware regions exist.
	NumRegions() int
	// UnsetRegion returns a disabled descriptor for region id.
	UnsetRegion(id int) R
	// NewRegions returns up to two contiguous regions, numbered
	// maxRegionID-1 and maxRegionID, that together make at least
	// initialSize bytes user-accessible with the given permissions,
	// starting at or after unallocStart, with enough hardware capacity
	// to later grow the accessible span to capacitySize bytes via
	// UpdateRegions (on Cortex-M the power-of-two footprint is fixed at
	// creation, so growth room must be reserved up front). Only the
	// initially-enabled span must fit within unallocSize bytes. ok is
	// false when the constraints cannot be met.
	//
	// The paper's trait passes a single total_size; we split it into
	// (initialSize, capacitySize) because the kernel sets the initial
	// app break below the full block, exactly as Tock's process loader
	// does, and the driver must size the footprint for the block.
	NewRegions(maxRegionID int, unallocStart, unallocSize, initialSize, capacitySize uint32, perms mpu.Permissions) (r0, r1 R, ok bool)
	// UpdateRegions resizes an allocated region pair in place so the
	// user-accessible span becomes at least totalSize bytes (and no
	// more than availableSize), keeping the same base address.
	UpdateRegions(r0, r1 R, regionStart, availableSize, totalSize uint32, perms mpu.Permissions) (nr0, nr1 R, ok bool)
	// NewExactRegion creates a single region spanning exactly
	// [start, start+size) with the given permissions, used for process
	// flash. ok is false if the hardware cannot represent it exactly.
	NewExactRegion(regionID int, start, size uint32, perms mpu.Permissions) (R, bool)
	// ConfigureMPU writes the region set to the hardware, in ascending
	// region-id order, and enables enforcement for unprivileged code.
	ConfigureMPU(regions []R) error
	// DisableMPU turns enforcement off (kernel execution).
	DisableMPU()
}

// AccessibleSpan returns the contiguous accessible span [start, end) of a
// contiguous region pair. The pair must be contiguous: r1, when set,
// starts exactly at r0's end.
func AccessibleSpan[R RegionDescriptor](r0, r1 R) (start, end uint32, ok bool) {
	s0, ok0 := r0.Start()
	z0, _ := r0.Size()
	if !ok0 {
		return 0, 0, false
	}
	end = s0 + z0
	if r1.IsSet() {
		s1, _ := r1.Start()
		z1, _ := r1.Size()
		if s1 != end {
			return 0, 0, false
		}
		end = s1 + z1
	}
	return s0, end, true
}
