package core

import (
	"testing"
	"testing/quick"

	"ticktock/internal/armv7m"
	"ticktock/internal/mpu"
)

func TestCortexMRegionDecoding(t *testing.T) {
	// 1024-byte footprint at 0x20000000, 5 of 8 subregions enabled, rw-.
	r := newCortexMRegion(0, 0x2000_0000, 1024, 5, mpu.ReadWriteOnly)
	if !r.IsSet() {
		t.Fatal("not set")
	}
	if r.RegionID() != 0 {
		t.Fatalf("id=%d", r.RegionID())
	}
	s, ok := r.Start()
	if !ok || s != 0x2000_0000 {
		t.Fatalf("start=0x%x ok=%v", s, ok)
	}
	sz, ok := r.Size()
	if !ok || sz != 5*128 {
		t.Fatalf("size=%d", sz)
	}
	if !r.AllowsPermissions(mpu.ReadWriteOnly) {
		t.Fatal("perm decode failed")
	}
	if r.AllowsPermissions(mpu.ReadExecuteOnly) {
		t.Fatal("wrong perms matched")
	}
	if !r.Overlaps(0x2000_0000, 0x2000_0001) {
		t.Fatal("overlap with first byte missed")
	}
	if r.Overlaps(0x2000_0000+5*128, 0x2000_0400) {
		t.Fatal("overlap reported in disabled subregions")
	}
}

func TestCortexMUnsetRegion(t *testing.T) {
	r := unsetCortexMRegion(3)
	if r.IsSet() {
		t.Fatal("unset region reports set")
	}
	if r.RegionID() != 3 {
		t.Fatalf("id=%d", r.RegionID())
	}
	if _, ok := r.Start(); ok {
		t.Fatal("unset region has a start")
	}
	if r.Overlaps(0, 0xFFFF_FFFF) {
		t.Fatal("unset region overlaps")
	}
	if r.AllowsPermissions(mpu.NoAccess) {
		t.Fatal("unset region matches permissions")
	}
}

func newCortexDriver() *CortexMMPU {
	return NewCortexMMPU(armv7m.NewMPUHardware())
}

func TestCortexMNewRegionsSmallRequest(t *testing.T) {
	c := newCortexDriver()
	r0, r1, ok := c.NewRegions(MaxRAMRegionNumber, 0x2000_0000, 0x10000, 100, 100, mpu.ReadWriteOnly)
	if !ok {
		t.Fatal("NewRegions failed")
	}
	start, end, ok := AccessibleSpan[CortexMRegion](r0, r1)
	if !ok {
		t.Fatal("span broken")
	}
	if start != 0x2000_0000 {
		t.Fatalf("start=0x%x", start)
	}
	if end-start < 100 {
		t.Fatalf("accessible %d < requested 100", end-start)
	}
	if r1.IsSet() {
		t.Fatal("tiny request used two regions")
	}
	if r0.RegionID() != RAMRegion0 {
		t.Fatalf("r0 id=%d", r0.RegionID())
	}
}

func TestCortexMNewRegionsTwoRegionRequest(t *testing.T) {
	c := newCortexDriver()
	// 6000 bytes: footprint 4096 gives 512-byte subregions; 12 needed
	// spans both regions.
	r0, r1, ok := c.NewRegions(MaxRAMRegionNumber, 0x2000_0000, 0x10000, 6000, 6000, mpu.ReadWriteOnly)
	if !ok {
		t.Fatal("NewRegions failed")
	}
	if !r1.IsSet() {
		t.Fatal("second region not used")
	}
	start, end, ok := AccessibleSpan[CortexMRegion](r0, r1)
	if !ok {
		t.Fatal("regions not contiguous")
	}
	if end-start < 6000 {
		t.Fatalf("accessible=%d", end-start)
	}
	// Subregion granularity: accessible is a multiple of footprint/8.
	if (end-start)%(r0.footprint()/8) != 0 {
		t.Fatalf("accessible %d not multiple of subregion", end-start)
	}
}

func TestCortexMNewRegionsAlignsStart(t *testing.T) {
	c := newCortexDriver()
	// Unaligned pool start: region base must move up to alignment.
	r0, _, ok := c.NewRegions(MaxRAMRegionNumber, 0x2000_0123, 0x10000, 1000, 1000, mpu.ReadWriteOnly)
	if !ok {
		t.Fatal("NewRegions failed")
	}
	s, _ := r0.Start()
	if s < 0x2000_0123 {
		t.Fatalf("start 0x%x below pool", s)
	}
	if s%r0.footprint() != 0 {
		t.Fatalf("start 0x%x not aligned to footprint %d", s, r0.footprint())
	}
}

func TestCortexMNewRegionsFailsWhenPoolTooSmall(t *testing.T) {
	c := newCortexDriver()
	if _, _, ok := c.NewRegions(MaxRAMRegionNumber, 0x2000_0000, 512, 4096, 4096, mpu.ReadWriteOnly); ok {
		t.Fatal("oversized request satisfied")
	}
	if _, _, ok := c.NewRegions(MaxRAMRegionNumber, 0x2000_0000, 0x1000, 0, 0, mpu.ReadWriteOnly); ok {
		t.Fatal("zero request satisfied")
	}
}

func TestCortexMUpdateRegionsGrowAndShrink(t *testing.T) {
	c := newCortexDriver()
	r0, r1, ok := c.NewRegions(MaxRAMRegionNumber, 0x2000_0000, 0x10000, 1024, 2048, mpu.ReadWriteOnly)
	if !ok {
		t.Fatal("NewRegions failed")
	}
	start, _, _ := AccessibleSpan[CortexMRegion](r0, r1)
	fp := r0.footprint()

	// Grow to 1.5 footprints: needs both regions.
	n0, n1, ok := c.UpdateRegions(r0, r1, start, 2*fp, fp+fp/2, mpu.ReadWriteOnly)
	if !ok {
		t.Fatal("grow failed")
	}
	_, end, sok := AccessibleSpan[CortexMRegion](n0, n1)
	if !sok || end-start < fp+fp/2 {
		t.Fatalf("grown accessible=%d", end-start)
	}
	if !n1.IsSet() {
		t.Fatal("grow did not engage region 1")
	}

	// Shrink back to one subregion.
	s0, s1, ok := c.UpdateRegions(n0, n1, start, 2*fp, 1, mpu.ReadWriteOnly)
	if !ok {
		t.Fatal("shrink failed")
	}
	_, send, _ := AccessibleSpan[CortexMRegion](s0, s1)
	if send-start != fp/8 {
		t.Fatalf("shrunk accessible=%d, want one subregion %d", send-start, fp/8)
	}
	if s1.IsSet() {
		t.Fatal("shrink left region 1 set")
	}
}

func TestCortexMUpdateRegionsRespectsAvailableSize(t *testing.T) {
	c := newCortexDriver()
	r0, r1, ok := c.NewRegions(MaxRAMRegionNumber, 0x2000_0000, 0x10000, 1024, 2048, mpu.ReadWriteOnly)
	if !ok {
		t.Fatal("NewRegions failed")
	}
	start, _, _ := AccessibleSpan[CortexMRegion](r0, r1)
	fp := r0.footprint()
	// Ask for more than availableSize admits: must fail, not over-grant.
	if _, _, ok := c.UpdateRegions(r0, r1, start, fp/2, fp, mpu.ReadWriteOnly); ok {
		t.Fatal("update exceeded availableSize")
	}
	// Unset base region must fail.
	if _, _, ok := c.UpdateRegions(unsetCortexMRegion(0), r1, start, fp, 10, mpu.ReadWriteOnly); ok {
		t.Fatal("update of unset region succeeded")
	}
	// Moved base must fail.
	if _, _, ok := c.UpdateRegions(r0, r1, start+32, fp, 10, mpu.ReadWriteOnly); ok {
		t.Fatal("update with moved base succeeded")
	}
}

func TestCortexMNewExactRegion(t *testing.T) {
	c := newCortexDriver()
	// Power-of-two, aligned: representable.
	r, ok := c.NewExactRegion(FlashRegionNumber, 0x0004_0000, 0x1000, mpu.ReadExecuteOnly)
	if !ok {
		t.Fatal("pow2 exact region failed")
	}
	if !CanAccess(r, 0x0004_0000, 0x0004_1000, mpu.ReadExecuteOnly) {
		t.Fatal("exact region does not CanAccess its span")
	}
	// Non-pow2 but subregion-representable: 96 = 3 * (256/8).
	r2, ok := c.NewExactRegion(FlashRegionNumber, 0x0004_0000, 96, mpu.ReadExecuteOnly)
	if !ok {
		t.Fatal("subregion-exact region failed")
	}
	if sz, _ := r2.Size(); sz != 96 {
		t.Fatalf("size=%d", sz)
	}
	// Unrepresentable: misaligned base.
	if _, ok := c.NewExactRegion(FlashRegionNumber, 0x0004_0004, 0x1000, mpu.ReadExecuteOnly); ok {
		t.Fatal("misaligned exact region accepted")
	}
	// Below the architectural minimum.
	if _, ok := c.NewExactRegion(FlashRegionNumber, 0x0004_0000, 16, mpu.ReadExecuteOnly); ok {
		t.Fatal("16-byte region accepted")
	}
}

func TestCortexMConfigureMPUWritesHardware(t *testing.T) {
	c := newCortexDriver()
	r0, r1, ok := c.NewRegions(MaxRAMRegionNumber, 0x2000_0000, 0x10000, 1024, 2048, mpu.ReadWriteOnly)
	if !ok {
		t.Fatal("NewRegions failed")
	}
	regions := make([]CortexMRegion, c.NumRegions())
	for i := range regions {
		regions[i] = c.UnsetRegion(i)
	}
	regions[RAMRegion0], regions[RAMRegion1] = r0, r1
	c.HW.ResetWriteLog()
	if err := c.ConfigureMPU(regions); err != nil {
		t.Fatal(err)
	}
	if !c.HW.CtrlEnable {
		t.Fatal("MPU not enabled")
	}
	// All 8 regions written, in ascending order.
	log := c.HW.RegionWriteLog
	if len(log) != armv7m.NumRegions {
		t.Fatalf("wrote %d regions", len(log))
	}
	for i, n := range log {
		if n != i {
			t.Fatalf("write order %v", log)
		}
	}
	// Hardware now admits the accessible span for user code.
	start, end, _ := AccessibleSpan[CortexMRegion](r0, r1)
	if !c.HW.AccessibleUser(start, end-start, mpu.AccessWrite) {
		t.Fatal("configured hardware denies the accessible span")
	}
	if c.HW.Check(end, mpu.AccessRead, false) == nil {
		t.Fatal("configured hardware admits past the accessible span")
	}
}

func TestCortexMScrambledWriteOrder(t *testing.T) {
	c := newCortexDriver()
	c.ScrambleWriteOrder = true
	regions := make([]CortexMRegion, c.NumRegions())
	for i := range regions {
		regions[i] = c.UnsetRegion(i)
	}
	c.HW.ResetWriteLog()
	if err := c.ConfigureMPU(regions); err != nil {
		t.Fatal(err)
	}
	log := c.HW.RegionWriteLog
	if log[0] == 0 {
		t.Fatalf("scrambled order still ascending: %v", log)
	}
}

// Property: whatever NewRegions returns, the accessible span it reports is
// exactly what the hardware admits after ConfigureMPU — the §4.4 driver
// obligation, checked against the bit-level Check.
func TestCortexMDriverHardwareAgreementProperty(t *testing.T) {
	f := func(startSel uint8, sizeSel uint16) bool {
		c := newCortexDriver()
		unallocStart := 0x2000_0000 + uint32(startSel)*64
		totalSize := uint32(sizeSel)%8000 + 1
		r0, r1, ok := c.NewRegions(MaxRAMRegionNumber, unallocStart, 0x2_0000, totalSize, totalSize, mpu.ReadWriteOnly)
		if !ok {
			return true // constraint failure is an allowed outcome
		}
		regions := make([]CortexMRegion, c.NumRegions())
		for i := range regions {
			regions[i] = c.UnsetRegion(i)
		}
		regions[RAMRegion0], regions[RAMRegion1] = r0, r1
		if err := c.ConfigureMPU(regions); err != nil {
			return false
		}
		start, end, sok := AccessibleSpan[CortexMRegion](r0, r1)
		if !sok || end-start < totalSize {
			return false
		}
		// Boundary probes: first byte in, last byte in, one before,
		// one after — plus subregion boundaries.
		if c.HW.Check(start, mpu.AccessWrite, false) != nil {
			return false
		}
		if c.HW.Check(end-1, mpu.AccessWrite, false) != nil {
			return false
		}
		if start > 0 && c.HW.Check(start-1, mpu.AccessWrite, false) == nil {
			return false
		}
		if c.HW.Check(end, mpu.AccessWrite, false) == nil {
			return false
		}
		sub := r0.footprint() / 8
		for a := start; a < end; a += sub {
			if c.HW.Check(a, mpu.AccessRead, false) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
