package core

import (
	"math/bits"

	"ticktock/internal/armv7m"
	"ticktock/internal/cycles"
	"ticktock/internal/mpu"
	"ticktock/internal/verify"
)

// CortexMRegion is the ARMv7-M region descriptor: exactly the pair of raw
// hardware register values (paper §4.4). Every RegionDescriptor answer is
// decoded from these bits — the Go analogue of Flux's associated
// refinements being defined over the register contents — so the logical
// view offered to the kernel is definitionally the hardware view.
type CortexMRegion struct {
	rbar uint32
	rasr uint32
}

// unsetCortexMRegion returns a disabled descriptor that still names its
// hardware region (the RBAR VALID+REGION fields are kept so ConfigureMPU
// clears the right slot).
func unsetCortexMRegion(id int) CortexMRegion {
	return CortexMRegion{rbar: uint32(id)&armv7m.RBARRegionMask | armv7m.RBARValid}
}

// RegionID decodes the hardware region number from RBAR.
func (r CortexMRegion) RegionID() int { return int(r.rbar & armv7m.RBARRegionMask) }

// IsSet decodes RASR.ENABLE.
func (r CortexMRegion) IsSet() bool { return r.rasr&armv7m.RASREnable != 0 }

// footprint returns the full hardware region size 2^(SIZE+1), including
// disabled subregions; 0 when unset.
func (r CortexMRegion) footprint() uint32 {
	if !r.IsSet() {
		return 0
	}
	sz := r.rasr & armv7m.RASRSizeMask >> armv7m.RASRSizeShift
	return 1 << (sz + 1)
}

// enabledPrefix returns how many subregions are enabled counting from
// subregion 0 before the first disabled one. TickTock only ever enables a
// prefix, and the correspondence proof relies on that shape.
func (r CortexMRegion) enabledPrefix() uint32 {
	srd := r.rasr & armv7m.RASRSRDMask >> armv7m.RASRSRDShift
	return uint32(bits.TrailingZeros8(uint8(srd) | 0)) // trailing zeros of SRD = enabled prefix
}

// Start decodes the accessible base address.
func (r CortexMRegion) Start() (uint32, bool) {
	if !r.IsSet() {
		return 0, false
	}
	return r.rbar & armv7m.RBARAddrMask, true
}

// Size decodes the accessible size: the enabled-subregion prefix for
// subregioned regions, or the whole footprint for regions below 256 bytes
// (where the hardware ignores SRD).
func (r CortexMRegion) Size() (uint32, bool) {
	if !r.IsSet() {
		return 0, false
	}
	fp := r.footprint()
	if fp < armv7m.MinSubregionedSize {
		return fp, true
	}
	n := r.enabledPrefix()
	if n > armv7m.SubregionsPerRegion {
		n = armv7m.SubregionsPerRegion
	}
	return n * (fp / armv7m.SubregionsPerRegion), true
}

// Overlaps reports whether any user-accessible byte falls in [start, end).
func (r CortexMRegion) Overlaps(start, end uint32) bool {
	s, ok := r.Start()
	if !ok || end <= start {
		return false
	}
	sz, _ := r.Size()
	return s < end && start < s+sz
}

// AllowsPermissions decodes the AP and XN fields and compares with the
// canonical encoding of p.
func (r CortexMRegion) AllowsPermissions(p mpu.Permissions) bool {
	got := r.rasr & (armv7m.RASRAPMask | armv7m.RASRXN)
	return got == armv7m.EncodeAP(p)
}

// RawRegisters exposes the register pair for the hardware write path and
// the driver-verification specs.
func (r CortexMRegion) RawRegisters() (rbar, rasr uint32) { return r.rbar, r.rasr }

// newCortexMRegion builds the register pair for a region of footprint
// bytes at base with the first enabledSubregions subregions enabled.
func newCortexMRegion(id int, base, footprint uint32, enabledSubregions uint32, perms mpu.Permissions) CortexMRegion {
	sizeField := uint32(bits.TrailingZeros32(footprint)) - 1
	srd := uint32(0xFF) &^ ((1 << enabledSubregions) - 1) // disable everything past the prefix
	rasr := sizeField<<armv7m.RASRSizeShift | srd<<armv7m.RASRSRDShift | armv7m.EncodeAP(perms) | armv7m.RASREnable
	rbar := base&armv7m.RBARAddrMask | armv7m.RBARValid | uint32(id)&armv7m.RBARRegionMask
	return CortexMRegion{rbar: rbar, rasr: rasr}
}

// CortexMMPU implements the granular MPU interface for ARMv7-M.
type CortexMMPU struct {
	HW    *armv7m.MPUHardware
	Meter *cycles.Meter
	// ScrambleWriteOrder reproduces the TCB bug the paper's §6.1
	// differential testing caught: region registers written out of
	// region-id order.
	ScrambleWriteOrder bool
}

// NewCortexMMPU returns a driver over the given MPU hardware.
func NewCortexMMPU(hw *armv7m.MPUHardware) *CortexMMPU { return &CortexMMPU{HW: hw} }

// NumRegions implements MPU.
func (c *CortexMMPU) NumRegions() int { return armv7m.NumRegions }

// UnsetRegion implements MPU.
func (c *CortexMMPU) UnsetRegion(id int) CortexMRegion { return unsetCortexMRegion(id) }

// ceilDiv returns ceil(a/b) for b > 0.
func ceilDiv(a, b uint32) uint32 { return (a + b - 1) / b }

// planSubregions picks the number of enabled subregions for a requested
// accessible size within a region pair of the given footprint each.
// Returns (k, ok): k in [1,16] with k*(footprint/8) >= totalSize.
func planSubregions(footprint, totalSize uint32) (uint32, bool) {
	sub := footprint / armv7m.SubregionsPerRegion
	k := ceilDiv(totalSize, sub)
	if k == 0 {
		k = 1
	}
	if k > 2*armv7m.SubregionsPerRegion {
		return 0, false
	}
	return k, true
}

// NewRegions implements MPU for ARMv7-M: it selects a power-of-two region
// footprint no smaller than 256 bytes (so subregions are architecturally
// effective), aligns the base up to the footprint, and enables the exact
// subregion prefix covering at least totalSize bytes across up to two
// contiguous regions. Only the *enabled* span must fit inside the
// unallocated pool: disabled-subregion overhang past the pool grants no
// access and is therefore harmless — this is what lets TickTock allocate
// non-power-of-two memory blocks (paper §6.2).
func (c *CortexMMPU) NewRegions(maxRegionID int, unallocStart, unallocSize, initialSize, capacitySize uint32, perms mpu.Permissions) (CortexMRegion, CortexMRegion, bool) {
	c.Meter.Add(cycles.Call + 4*cycles.ALU)
	unset := unsetCortexMRegion(maxRegionID)
	capacitySize = max(capacitySize, initialSize)
	if initialSize == 0 || uint64(capacitySize) > 1<<31 {
		return unset, unset, false
	}
	// Smallest footprint R such that 16 subregions (2R) can cover the
	// eventual capacity: R >= closest_pow2(capacity)/2, floor 256.
	fp := verify.ClosestPowerOfTwo(capacitySize) / 2
	if fp < armv7m.MinSubregionedSize {
		fp = armv7m.MinSubregionedSize
	}
	for attempt := 0; attempt < 4; attempt++ {
		c.Meter.Add(6 * cycles.ALU)
		start := verify.AlignUp(unallocStart, fp)
		k, ok := planSubregions(fp, initialSize)
		if ok {
			accessible := k * (fp / armv7m.SubregionsPerRegion)
			end := uint64(start) + uint64(accessible)
			if end <= uint64(unallocStart)+uint64(unallocSize) {
				r0Count := min(k, armv7m.SubregionsPerRegion)
				r0 := newCortexMRegion(maxRegionID-1, start, fp, r0Count, perms)
				r1 := unsetCortexMRegion(maxRegionID)
				if k > armv7m.SubregionsPerRegion {
					r1 = newCortexMRegion(maxRegionID, start+fp, fp, k-armv7m.SubregionsPerRegion, perms)
				}
				return r0, r1, true
			}
		}
		fp *= 2
		if fp == 0 {
			break
		}
	}
	return unset, unset, false
}

// UpdateRegions implements MPU: it re-plans the enabled subregion prefix
// for the existing footprint, keeping the base fixed. Pure bit arithmetic,
// no loops — the property the paper credits for TickTock's faster brk.
func (c *CortexMMPU) UpdateRegions(r0, r1 CortexMRegion, regionStart, availableSize, totalSize uint32, perms mpu.Permissions) (CortexMRegion, CortexMRegion, bool) {
	c.Meter.Add(cycles.Call + 8*cycles.ALU)
	unset := unsetCortexMRegion(r1.RegionID())
	fp := r0.footprint()
	if fp == 0 {
		return r0, r1, false
	}
	if s, _ := r0.Start(); s != regionStart {
		return r0, r1, false
	}
	k, ok := planSubregions(fp, totalSize)
	if !ok {
		return r0, r1, false
	}
	accessible := k * (fp / armv7m.SubregionsPerRegion)
	if accessible > availableSize {
		return r0, r1, false
	}
	nr0 := newCortexMRegion(r0.RegionID(), regionStart, fp, min(k, armv7m.SubregionsPerRegion), perms)
	nr1 := unset
	if k > armv7m.SubregionsPerRegion {
		nr1 = newCortexMRegion(r1.RegionID(), regionStart+fp, fp, k-armv7m.SubregionsPerRegion, perms)
	}
	return nr0, nr1, true
}

// NewExactRegion implements MPU: covers [start, start+size) exactly, using
// a bare power-of-two region when size is a power of two, or an enabled
// subregion prefix of a larger region otherwise.
func (c *CortexMMPU) NewExactRegion(regionID int, start, size uint32, perms mpu.Permissions) (CortexMRegion, bool) {
	c.Meter.Add(cycles.Call + 4*cycles.ALU)
	bad := unsetCortexMRegion(regionID)
	if size < armv7m.MinRegionSize || uint64(size) > 1<<31 {
		return bad, false
	}
	if verify.IsPow2(size) && start%size == 0 {
		return newCortexMRegion(regionID, start, size, armv7m.SubregionsPerRegion, perms), true
	}
	// Subregion prefix of a bigger region: need fp pow2 >= 256 with
	// size = k*(fp/8), k in [1,8], start aligned to fp.
	for fp := uint32(armv7m.MinSubregionedSize); fp <= 1<<31 && fp != 0; fp <<= 1 {
		sub := fp / armv7m.SubregionsPerRegion
		if size%sub != 0 {
			continue
		}
		k := size / sub
		if k > armv7m.SubregionsPerRegion {
			continue
		}
		if start%fp != 0 {
			return bad, false // larger footprints need even stricter alignment
		}
		return newCortexMRegion(regionID, start, fp, k, perms), true
	}
	return bad, false
}

// ConfigureMPU implements MPU: it writes all region register pairs in
// ascending region-id order and enables enforcement. Region-id order is
// part of the TCB contract §6.1's differential testing validated; the
// ScrambleWriteOrder flag reintroduces the caught bug for those tests.
func (c *CortexMMPU) ConfigureMPU(regions []CortexMRegion) error {
	order := make([]int, len(regions))
	for i := range order {
		order[i] = i
	}
	if c.ScrambleWriteOrder {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}
	for _, i := range order {
		r := regions[i]
		c.Meter.Add(2 * cycles.MMIO)
		if err := c.HW.WriteRegion(r.RegionID(), r.rbar, r.rasr); err != nil {
			return err
		}
	}
	c.HW.CtrlEnable = true
	// TickTock issues an extra DSB+ISB pair after enabling the MPU so
	// the verified region-write ordering is architecturally committed
	// before the exception return — the ~7-cycle setup_mpu regression
	// Figure 11 reports.
	c.Meter.Add(cycles.MMIO + 2*cycles.Barrier)
	return nil
}

// DisableMPU implements MPU.
func (c *CortexMMPU) DisableMPU() {
	c.HW.CtrlEnable = false
	c.Meter.Add(cycles.MMIO)
}

var _ MPU[CortexMRegion] = (*CortexMMPU)(nil)
var _ RegionDescriptor = CortexMRegion{}
