package core

import (
	"ticktock/internal/cycles"
	"ticktock/internal/metrics"
	"ticktock/internal/mpu"
	"ticktock/internal/riscv"
	"ticktock/internal/verify"
)

// PMPRegion is the RISC-V region descriptor. A logical region occupies two
// consecutive PMP entries in TOR mode (entry 2i holds the start address
// with A=OFF, entry 2i+1 holds the end with A=TOR), or one entry in NAPOT
// mode on chips without TOR support. As with CortexMRegion, every answer
// is decoded from the raw CSR values.
type PMPRegion struct {
	id    int
	napot bool
	// TOR form: loAddr/hiAddr are pmpaddr values (address >> 2).
	loAddr, hiAddr uint32
	// NAPOT form: addrReg is the encoded pmpaddr value.
	addrReg uint32
	cfg     uint8
	set     bool
}

// RegionID implements RegionDescriptor.
func (r PMPRegion) RegionID() int { return r.id }

// IsSet implements RegionDescriptor.
func (r PMPRegion) IsSet() bool { return r.set }

// span decodes the protected address range.
func (r PMPRegion) span() (start, end uint64) {
	if !r.set {
		return 0, 0
	}
	if r.napot {
		base, size := riscv.DecodeNAPOT(r.addrReg)
		return base, base + size
	}
	return uint64(r.loAddr) << 2, uint64(r.hiAddr) << 2
}

// Start implements RegionDescriptor. The PMP is byte-flexible (4-byte
// granularity), so the accessible start is the region start (paper §3.5).
func (r PMPRegion) Start() (uint32, bool) {
	if !r.set {
		return 0, false
	}
	s, _ := r.span()
	return uint32(s), true
}

// Size implements RegionDescriptor.
func (r PMPRegion) Size() (uint32, bool) {
	if !r.set {
		return 0, false
	}
	s, e := r.span()
	return uint32(e - s), true
}

// Overlaps implements RegionDescriptor.
func (r PMPRegion) Overlaps(start, end uint32) bool {
	if !r.set || end <= start {
		return false
	}
	s, e := r.span()
	return s < uint64(end) && uint64(start) < e
}

// AllowsPermissions implements RegionDescriptor by decoding the R/W/X cfg
// bits.
func (r PMPRegion) AllowsPermissions(p mpu.Permissions) bool {
	if !r.set {
		return false
	}
	rwx := r.cfg & (riscv.CfgR | riscv.CfgW | riscv.CfgX)
	mode := r.cfg & riscv.CfgAMask
	return rwx|mode == riscv.EncodeCfg(p, mode>>riscv.CfgAShift)
}

// PMPMPU implements the granular MPU interface over a riscv.PMP unit. It
// adapts to the chip: TOR-capable chips get byte-granular (4-byte) regions
// with two entries each; NAPOT-only chips (ESP32-C3) get power-of-two
// regions with one entry each — exactly the hardware variability the
// RegionDescriptor abstraction hides from the kernel allocator.
type PMPMPU struct {
	HW    *riscv.PMP
	Meter *cycles.Meter

	// Writes counts PMP CSR entry writes (TOR chips cost two per
	// region) when metrics are attached; nil-safe, charges no cycles.
	Writes *metrics.Counter
}

// NewPMPMPU returns a driver over the given PMP unit.
func NewPMPMPU(hw *riscv.PMP) *PMPMPU { return &PMPMPU{HW: hw} }

// NumRegions implements MPU: TOR chips pair entries, NAPOT chips don't.
func (p *PMPMPU) NumRegions() int {
	if p.HW.Chip.TORSupported {
		return p.HW.Chip.Entries / 2
	}
	return p.HW.Chip.Entries
}

// UnsetRegion implements MPU.
func (p *PMPMPU) UnsetRegion(id int) PMPRegion { return PMPRegion{id: id} }

// granule returns the chip's protection granularity.
func (p *PMPMPU) granule() uint32 { return p.HW.Chip.Granularity }

// makeRegion builds a descriptor for [start, start+size) if the chip can
// represent it with the region base fixed at start.
func (p *PMPMPU) makeRegion(id int, start, size uint32, perms mpu.Permissions) (PMPRegion, bool) {
	g := p.granule()
	if size == 0 || start%g != 0 {
		return PMPRegion{id: id}, false
	}
	if p.HW.Chip.TORSupported {
		size = verify.AlignUp(size, g)
		if uint64(start)+uint64(size) > 1<<32 {
			return PMPRegion{id: id}, false
		}
		return PMPRegion{
			id: id, napot: false,
			loAddr: start >> 2, hiAddr: (start + size) >> 2,
			cfg: riscv.EncodeCfg(perms, riscv.ATor),
			set: true,
		}, true
	}
	// NAPOT: size must be a power of two >= 8 and start aligned to it.
	sz := verify.ClosestPowerOfTwo(max(size, 8))
	if start%sz != 0 {
		return PMPRegion{id: id}, false
	}
	reg, err := riscv.EncodeNAPOT(start, sz)
	if err != nil {
		return PMPRegion{id: id}, false
	}
	return PMPRegion{
		id: id, napot: true, addrReg: reg,
		cfg: riscv.EncodeCfg(perms, riscv.ANapot),
		set: true,
	}, true
}

// NewRegions implements MPU. RISC-V needs only a single region for the
// process RAM (paper §6.2: "one RAM region for RISC-V"), returned as r0
// with r1 unset.
func (p *PMPMPU) NewRegions(maxRegionID int, unallocStart, unallocSize, initialSize, capacitySize uint32, perms mpu.Permissions) (PMPRegion, PMPRegion, bool) {
	p.Meter.Add(cycles.Call + 4*cycles.ALU)
	unset0, unset1 := PMPRegion{id: maxRegionID - 1}, PMPRegion{id: maxRegionID}
	if initialSize == 0 {
		return unset0, unset1, false
	}
	g := p.granule()
	start := verify.AlignUp(unallocStart, g)
	if !p.HW.Chip.TORSupported {
		// NAPOT start must align to the largest (power-of-two) size the
		// region may grow to, so in-place growth stays representable.
		sz := verify.ClosestPowerOfTwo(max(capacitySize, initialSize, 8))
		start = verify.AlignUp(unallocStart, sz)
	}
	r0, ok := p.makeRegion(maxRegionID-1, start, initialSize, perms)
	if !ok {
		return unset0, unset1, false
	}
	_, accessEnd, _ := AccessibleSpan[PMPRegion](r0, unset1)
	if uint64(accessEnd) > uint64(unallocStart)+uint64(unallocSize) {
		return unset0, unset1, false
	}
	return r0, unset1, true
}

// UpdateRegions implements MPU: rebuilds the single RAM region with the
// same base and a new size.
func (p *PMPMPU) UpdateRegions(r0, r1 PMPRegion, regionStart, availableSize, totalSize uint32, perms mpu.Permissions) (PMPRegion, PMPRegion, bool) {
	p.Meter.Add(cycles.Call + 4*cycles.ALU)
	if !r0.IsSet() {
		return r0, r1, false
	}
	if s, _ := r0.Start(); s != regionStart {
		return r0, r1, false
	}
	nr0, ok := p.makeRegion(r0.RegionID(), regionStart, totalSize, perms)
	if !ok {
		return r0, r1, false
	}
	if sz, _ := nr0.Size(); sz > availableSize {
		return r0, r1, false
	}
	return nr0, PMPRegion{id: r1.RegionID()}, true
}

// NewExactRegion implements MPU.
func (p *PMPMPU) NewExactRegion(regionID int, start, size uint32, perms mpu.Permissions) (PMPRegion, bool) {
	p.Meter.Add(cycles.Call + 2*cycles.ALU)
	r, ok := p.makeRegion(regionID, start, size, perms)
	if !ok {
		return r, false
	}
	if sz, _ := r.Size(); sz != size {
		return PMPRegion{id: regionID}, false // representation would over-grant
	}
	return r, true
}

// ConfigureMPU implements MPU: writes the CSR entries for every region in
// ascending order, clearing entries for unset regions.
func (p *PMPMPU) ConfigureMPU(regions []PMPRegion) error {
	for _, r := range regions {
		if p.HW.Chip.TORSupported {
			lo, hi := 2*r.id, 2*r.id+1
			p.Meter.Add(2 * cycles.MMIO)
			p.Writes.Add(2)
			if !r.set {
				if err := p.HW.SetEntry(lo, 0, 0); err != nil {
					return err
				}
				if err := p.HW.SetEntry(hi, 0, 0); err != nil {
					return err
				}
				continue
			}
			if err := p.HW.SetEntry(lo, 0, r.loAddr); err != nil {
				return err
			}
			if err := p.HW.SetEntry(hi, r.cfg, r.hiAddr); err != nil {
				return err
			}
			continue
		}
		p.Meter.Add(cycles.MMIO)
		p.Writes.Inc()
		if !r.set {
			if err := p.HW.SetEntry(r.id, 0, 0); err != nil {
				return err
			}
			continue
		}
		if err := p.HW.SetEntry(r.id, r.cfg, r.addrReg); err != nil {
			return err
		}
	}
	return nil
}

// DisableMPU implements MPU. PMP has no global enable; machine mode
// already bypasses unlocked entries, so kernel execution needs no change.
func (p *PMPMPU) DisableMPU() {}

var _ MPU[PMPRegion] = (*PMPMPU)(nil)
var _ RegionDescriptor = PMPRegion{}
