package core

import (
	"ticktock/internal/armv8m"
	"ticktock/internal/cycles"
	"ticktock/internal/mpu"
	"ticktock/internal/verify"
)

// V8MRegion is the ARMv8-M region descriptor: the raw RBAR/RLAR register
// pair. v8-M regions are simple base/limit ranges with 32-byte
// granularity and no subregions, so the descriptor decode is trivial —
// which is rather the point: the same kernel allocator runs over this
// driver, the v7-M subregion machinery, and the RISC-V PMP without
// noticing the difference.
type V8MRegion struct {
	id   int
	rbar uint32
	rlar uint32
}

// RegionID implements RegionDescriptor.
func (r V8MRegion) RegionID() int { return r.id }

// IsSet implements RegionDescriptor.
func (r V8MRegion) IsSet() bool { return r.rlar&armv8m.RLAREnable != 0 }

// Start implements RegionDescriptor.
func (r V8MRegion) Start() (uint32, bool) {
	if !r.IsSet() {
		return 0, false
	}
	return r.rbar & armv8m.AddrMask, true
}

// Size implements RegionDescriptor.
func (r V8MRegion) Size() (uint32, bool) {
	if !r.IsSet() {
		return 0, false
	}
	base := r.rbar & armv8m.AddrMask
	limit := r.rlar & armv8m.AddrMask
	return limit - base + armv8m.Granule, true
}

// Overlaps implements RegionDescriptor.
func (r V8MRegion) Overlaps(start, end uint32) bool {
	s, ok := r.Start()
	if !ok || end <= start {
		return false
	}
	sz, _ := r.Size()
	return s < end && start < s+sz
}

// AllowsPermissions implements RegionDescriptor.
func (r V8MRegion) AllowsPermissions(p mpu.Permissions) bool {
	got := r.rbar & (armv8m.RBARAPMask | armv8m.RBARXN)
	return got == armv8m.EncodeRBAR(p)
}

// RawRegisters exposes the register pair.
func (r V8MRegion) RawRegisters() (rbar, rlar uint32) { return r.rbar, r.rlar }

// newV8MRegion builds the register pair for [start, start+size), both
// 32-byte aligned.
func newV8MRegion(id int, start, size uint32, perms mpu.Permissions) V8MRegion {
	return V8MRegion{
		id:   id,
		rbar: start&armv8m.AddrMask | armv8m.EncodeRBAR(perms),
		rlar: (start+size-armv8m.Granule)&armv8m.AddrMask | armv8m.RLAREnable,
	}
}

// V8MMPU implements the granular MPU interface for ARMv8-M.
type V8MMPU struct {
	HW    *armv8m.MPUHardware
	Meter *cycles.Meter
}

// NewV8MMPU returns a driver over the given hardware.
func NewV8MMPU(hw *armv8m.MPUHardware) *V8MMPU { return &V8MMPU{HW: hw} }

// NumRegions implements MPU.
func (c *V8MMPU) NumRegions() int { return armv8m.NumRegions }

// UnsetRegion implements MPU.
func (c *V8MMPU) UnsetRegion(id int) V8MRegion { return V8MRegion{id: id} }

// NewRegions implements MPU: v8-M needs a single region per contiguous
// span (no power-of-two constraint), rounded to the 32-byte granule.
func (c *V8MMPU) NewRegions(maxRegionID int, unallocStart, unallocSize, initialSize, capacitySize uint32, perms mpu.Permissions) (V8MRegion, V8MRegion, bool) {
	c.Meter.Add(cycles.Call + 3*cycles.ALU)
	unset0, unset1 := V8MRegion{id: maxRegionID - 1}, V8MRegion{id: maxRegionID}
	if initialSize == 0 {
		return unset0, unset1, false
	}
	start := verify.AlignUp(unallocStart, armv8m.Granule)
	size := verify.AlignUp(initialSize, armv8m.Granule)
	if uint64(start)+uint64(size) > uint64(unallocStart)+uint64(unallocSize) {
		return unset0, unset1, false
	}
	return newV8MRegion(maxRegionID-1, start, size, perms), unset1, true
}

// UpdateRegions implements MPU: rebuild the single region with a new size
// at the same base.
func (c *V8MMPU) UpdateRegions(r0, r1 V8MRegion, regionStart, availableSize, totalSize uint32, perms mpu.Permissions) (V8MRegion, V8MRegion, bool) {
	c.Meter.Add(cycles.Call + 3*cycles.ALU)
	if !r0.IsSet() {
		return r0, r1, false
	}
	if s, _ := r0.Start(); s != regionStart {
		return r0, r1, false
	}
	size := verify.AlignUp(max(totalSize, armv8m.Granule), armv8m.Granule)
	if size > availableSize {
		return r0, r1, false
	}
	return newV8MRegion(r0.RegionID(), regionStart, size, perms), V8MRegion{id: r1.RegionID()}, true
}

// NewExactRegion implements MPU.
func (c *V8MMPU) NewExactRegion(regionID int, start, size uint32, perms mpu.Permissions) (V8MRegion, bool) {
	c.Meter.Add(cycles.Call + 2*cycles.ALU)
	if size == 0 || start%armv8m.Granule != 0 || size%armv8m.Granule != 0 {
		return V8MRegion{id: regionID}, false
	}
	return newV8MRegion(regionID, start, size, perms), true
}

// ConfigureMPU implements MPU.
func (c *V8MMPU) ConfigureMPU(regions []V8MRegion) error {
	for _, r := range regions {
		c.Meter.Add(2 * cycles.MMIO)
		if !r.IsSet() {
			if err := c.HW.ClearRegion(r.id); err != nil {
				return err
			}
			continue
		}
		if err := c.HW.WriteRegion(r.id, r.rbar, r.rlar); err != nil {
			return err
		}
	}
	c.HW.CtrlEnable = true
	c.Meter.Add(cycles.MMIO + cycles.Barrier)
	return nil
}

// DisableMPU implements MPU.
func (c *V8MMPU) DisableMPU() {
	c.HW.CtrlEnable = false
	c.Meter.Add(cycles.MMIO)
}

var _ MPU[V8MRegion] = (*V8MMPU)(nil)
var _ RegionDescriptor = V8MRegion{}
