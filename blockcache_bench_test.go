package ticktock

// Benchmarks and guards for the block-cache fast core: predecoded basic
// blocks with per-block execute covers and last-hit interval hints for
// data accesses. BenchmarkBlockCache reports fast-vs-oracle stepping
// cost per port; TestBlockCacheSpeedupGuard pins the acceptance ratio
// so a regression (losing the block batch, reverting the hints, or
// breaking the quickened dispatch) fails the suite rather than just
// slowing it down; TestProgramLookupScalingGuard pins the sorted
// program lookup that replaced the linear scan over loaded programs.

import (
	"testing"
	"time"

	"ticktock/internal/armv7m"
	"ticktock/internal/corebench"
)

// BenchmarkBlockCache times the preemptive workload per port and core.
// Compare <port>/fast against <port>/oracle; both retire the identical
// instruction stream and simulated cycles.
func BenchmarkBlockCache(b *testing.B) {
	type variant struct {
		name      string
		newRunner func(fast bool) corebench.Runner
		fast      bool
	}
	variants := []variant{
		{"armv7m/oracle", corebench.NewARMRunner, false},
		{"armv7m/fast", corebench.NewARMRunner, true},
		{"rv32/oracle", corebench.NewRVRunner, false},
		{"rv32/fast", corebench.NewRVRunner, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			r := v.newRunner(v.fast)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Measure(10)
			}
		})
	}
}

// TestBlockCacheSpeedupGuard enforces the acceptance criterion: on the
// preemptive kernel-like workload, the block-cache core must step at
// least 5x faster per simulated cycle than the byte-scan oracle core,
// on both ports. Trials are interleaved and minimum-taken inside
// corebench.Speedup so CI-box contention cannot manufacture a failure;
// the measured margin is comfortably above the pinned 5x (the committed
// BENCH_blockcache.json records the ratio a quiet machine produces).
func TestBlockCacheSpeedupGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	if raceEnabled {
		// Race instrumentation taxes the two cores differently (the fast
		// core's win is fewer calls and checks, not fewer memory
		// accesses), so the 5x ratio is only meaningful uninstrumented.
		t.Skip("timing guard skipped under the race detector")
	}
	ports := []struct {
		name      string
		newRunner func(fast bool) corebench.Runner
	}{
		{"armv7m", corebench.NewARMRunner},
		{"rv32", corebench.NewRVRunner},
	}
	for _, pt := range ports {
		// Up to three attempts: the guard asserts the fast core *can*
		// sustain the ratio, and contention only ever lowers a measured
		// ratio, so one quiet attempt is conclusive while a single noisy
		// one is not.
		var slow, fast corebench.Result
		var ratio float64
		for attempt := 0; attempt < 3; attempt++ {
			slow, fast, ratio = corebench.Speedup(pt.newRunner, 10, 5)
			t.Logf("%s: oracle=%.0f fast=%.0f ns/kcycle speedup=%.1fx (%d sim cycles)",
				pt.name, slow.NsPerKCycle(), fast.NsPerKCycle(), ratio, fast.SimCycles)
			if ratio >= 5 {
				break
			}
		}
		// The persistent machines run phase-shifted after their warmup, so
		// per-run cycle counts differ by a hair; byte-exact equality is
		// the difftest suite's job. This only sanity-checks the workloads.
		dc := float64(slow.SimCycles) - float64(fast.SimCycles)
		if dc < -500 || dc > 500 {
			t.Fatalf("%s: cores ran different workloads: oracle=%d fast=%d sim cycles",
				pt.name, slow.SimCycles, fast.SimCycles)
		}
		if ratio < 5 {
			t.Errorf("%s: fast core only %.1fx faster than the oracle core (need >= 5x)", pt.name, ratio)
		}
	}
}

// lookupMachine builds an oracle-core machine with n single-block
// programs loaded and the PC parked on the highest-based one — the
// worst case for a linear program scan, the unremarkable case for the
// sorted lookup.
func lookupMachine(n int) *armv7m.Machine {
	mem := armv7m.NewMemory()
	if _, err := mem.Map("flash", 0, 0x8_0000); err != nil {
		panic(err)
	}
	if _, err := mem.Map("ram", 0x2000_0000, 0x1_0000); err != nil {
		panic(err)
	}
	m := armv7m.NewMachine(mem)
	var last uint32
	for i := 0; i < n; i++ {
		base := uint32(0x100 + i*0x40)
		a := armv7m.NewAssembler(base)
		a.Label("spin").
			Emit(armv7m.AddImm{Rd: armv7m.R0, Rn: armv7m.R0, Imm: 1}).
			Emit(armv7m.AddImm{Rd: armv7m.R1, Rn: armv7m.R1, Imm: 1}).
			BTo(armv7m.AL, "spin")
		if err := m.LoadProgram(a.MustAssemble()); err != nil {
			panic(err)
		}
		last = base
	}
	m.CPU.PC = last
	m.CPU.MSP = 0x2000_FF00
	return m
}

// TestProgramLookupScalingGuard pins the sorted program lookup: the
// per-instruction cost of the oracle core must not grow linearly with
// the number of loaded programs. With the binary search, going from 4
// to 512 programs costs a few extra comparisons per fetch; with the old
// linear scan it cost ~128x more, so the 8x ceiling cleanly separates
// the two while leaving plenty of room for timing noise.
func TestProgramLookupScalingGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	const budget = 30_000
	perCycle := func(n int) time.Duration {
		m := lookupMachine(n)
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 5; trial++ {
			start := time.Now()
			stop, err := m.Run(budget)
			if err != nil {
				t.Fatal(err)
			}
			if stop.Reason != armv7m.StopBudget {
				t.Fatalf("unexpected stop %v", stop.Reason)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	perCycle(4) // warm allocations before the timed trials
	few := perCycle(4)
	many := perCycle(512)
	ratio := float64(many) / float64(few)
	t.Logf("4 programs: %v/run, 512 programs: %v/run, ratio=%.2fx", few, many, ratio)
	if ratio > 8 {
		t.Errorf("program lookup cost grew %.1fx from 4 to 512 loaded programs (need <= 8x; linear scan would be ~128x)", ratio)
	}
}
