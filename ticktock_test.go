package ticktock

import (
	"testing"

	"ticktock/internal/apps"
	"ticktock/internal/armv7m"
)

func TestFacadeBootAndRun(t *testing.T) {
	k, err := NewKernel(Options{Flavour: FlavourTickTock})
	if err != nil {
		t.Fatal(err)
	}
	app := App{
		Name: "facade", MinRAM: 8192, InitRAM: 2048, Stack: 1024, KernelHint: 512,
		Build: func(base uint32) *armv7m.Program {
			a := armv7m.NewAssembler(base)
			apps.Puts(a, "via facade")
			apps.Exit(a, 0)
			return a.MustAssemble()
		},
	}
	p, err := k.LoadProcess(app)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	if k.Output(p) != "via facade" {
		t.Fatalf("output=%q", k.Output(p))
	}
}

func TestFacadeReleaseTests(t *testing.T) {
	if got := len(ReleaseTests()); got != 21 {
		t.Fatalf("release tests=%d", got)
	}
}

func TestFacadeVerification(t *testing.T) {
	if rep := VerifyGranular(QuickVerification); !rep.OK() {
		t.Fatalf("granular obligations failed: %v", rep.Failed()[0].Violations[0])
	}
	if rep := VerifyMonolithic(QuickVerification); !rep.OK() {
		t.Fatalf("monolithic obligations failed: %v", rep.Failed()[0].Violations[0])
	}
	if rep := VerifyInterrupts(QuickVerification); !rep.OK() {
		t.Fatalf("interrupt obligations failed: %v", rep.Failed()[0].Violations[0])
	}
}

func TestFacadeProofEffortNonEmpty(t *testing.T) {
	rows := ProofEffort()
	if len(rows) < 5 {
		t.Fatalf("effort rows=%d", len(rows))
	}
}

func TestFacadeContextSwitchChecker(t *testing.T) {
	if errs := CheckContextSwitch(2, false); len(errs) != 0 {
		t.Fatalf("correct switch flagged: %v", errs[0])
	}
	if errs := CheckContextSwitch(2, true); len(errs) == 0 {
		t.Fatal("buggy switch not flagged")
	}
}

func TestFacadeMemoryFootprint(t *testing.T) {
	rows, err := MemoryFootprint()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
}

func TestFacadeDifferentialCampaign(t *testing.T) {
	rows := RunDifferentialCampaign()
	if len(rows) != 21 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
	}
}

func TestFacadeCompareCycles(t *testing.T) {
	rows, err := CompareCycles()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows=%d", len(rows))
	}
}
