GO ?= go

.PHONY: ci fmt vet build test race bench profile cover ablation faultcamp accessbench benchjson replaycheck runcheck campaigncheck telemetrycheck

# ci is the gate the concurrency-touching paths (parallel difftest
# campaign, goroutine-safe Stats, tracer, metrics registry) must keep
# green.
ci: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# profile runs the whole release campaign with metrics attached and
# prints the merged table plus the folded-stack cycle profile. Use
# `go run ./cmd/profile -h` for single-case / Prometheus / folded modes.
profile:
	$(GO) run ./cmd/profile -all

# cover prints the per-package statement-coverage summary.
cover:
	$(GO) test -cover ./...

# ablation proves the observability and fault-injection subsystems are
# free at the simulated-cycle level when idle (tracer, metrics registry,
# flight recorder, disarmed fault hooks, telemetry plane).
ablation:
	$(GO) test -bench 'Ablation_TraceOverhead|Ablation_MetricsOverhead|Ablation_FaultInjectOverhead|Ablation_FlightRecOverhead|Ablation_TelemetryOverhead' -benchtime 1x -run '^$$' .

# accessbench records the interval access-map engine against the
# per-byte scan baseline on the 64 KiB acceptance query, per port, and
# emits the machine-readable artifact CI archives.
accessbench:
	$(GO) test -bench 'AccessMap' -benchtime 100x -run '^$$' .
	$(GO) run ./cmd/benchtab -accessmap-json BENCH_accessmap.json
	$(GO) run ./cmd/benchtab -validate BENCH_accessmap.json

# benchjson emits and validates the machine-readable benchmark
# artifacts — the perf trajectory CI plots across commits. The kernel
# and accessmap artifacts are regenerated per run; the blockcache one
# is also committed at the repo root so the pinned >= 5x fast-core
# speedup travels with the tree (regenerate on a quiet machine).
benchjson:
	$(GO) run ./cmd/benchtab -json BENCH_kernel.json -accessmap-json BENCH_accessmap.json -blockcache-json BENCH_blockcache.json
	$(GO) run ./cmd/benchtab -validate BENCH_kernel.json,BENCH_accessmap.json,BENCH_blockcache.json
	@for f in BENCH_kernel.json BENCH_accessmap.json BENCH_blockcache.json; do \
		test -s $$f || { echo "missing artifact $$f"; exit 1; }; done

# replaycheck runs the flight-recorder determinism and bisection suite
# under the race detector: byte-identical recordings, replay == live
# state on both ports, injected faults replayed from the recording, and
# seeded difftest divergences bisected to the first divergent field.
replaycheck:
	$(GO) test -race -run 'Determinism|Replay|Bisect|FlightRec|FlightFields|Keyframe|Codec|CompareStates|ThreeWay|Dropped' \
		./internal/flightrec/ ./internal/difftest/ ./internal/trace/ ./internal/armv8m/

# faultcamp runs the seeded fault-injection campaign across both ports
# (ARM and RISC-V) and fails on any isolation-contract violation or
# scenario error. Same seed, same report, byte for byte.
faultcamp:
	$(GO) run ./cmd/faultcamp -n 500

# campaigncheck proves the campaign supervisor's crash-resilience story
# under the race detector — kill-and-resume determinism at varying
# worker counts, terminal quarantine across resume, chaos-seeded
# timeout/crash classification, supervised receipts, nested-backoff
# additivity — then runs a chaos campaign whose quarantined scenarios
# seal as bug-report packs (CI archives ./quarantine) and verifies the
# sealed evidence including receipt re-derivation.
campaigncheck:
	$(GO) test -race -count=1 ./internal/campaign/
	$(GO) test -race -count=1 -run 'Supervised|KillAndResume|Chaos|Quarantine|RecordRunsBothOrNeither|EmptyCampaign|NestedBackoff|CampaignObligations' \
		./internal/faultinject/ ./internal/difftest/ ./internal/specs/ ./cmd/faultcamp/
	rm -rf quarantine && mkdir -p quarantine
	$(GO) run ./cmd/faultcamp -seed 7 -n 12 -chaos "wedge:2,panic:9" -timeout 2s -retries 1 -quarantine quarantine
	$(GO) run ./cmd/runpack verify -rerun quarantine/*

# telemetrycheck proves the live telemetry plane end to end under the
# race detector: plane/server/progress unit suites, the streaming
# aggregation invariants (live aggregate == post-hoc merge at any worker
# count), traced == untraced results, the exposition round-trip, and the
# mid-run HTTP scrape — a supervised campaign run with -serve must
# answer /metrics, /progress, /healthz and /timeline while running, with
# validated payloads — then the zero-sim-cycle ablation guard.
telemetrycheck:
	$(GO) test -race -count=1 ./internal/telemetry/
	$(GO) test -race -count=1 -run 'Telemetry|ServeAnswersMidRun|Delta|Exposition|RoundTrip|Help|ContentType|Fleet|Traced|LiveAggregate|LiveEquals|Blockcache|SnapshotUnderConcurrent|HistogramQuantile' \
		./internal/metrics/ ./internal/trace/ ./internal/difftest/ ./internal/faultinject/ ./cmd/faultcamp/
	$(GO) test -bench 'Ablation_TelemetryOverhead' -benchtime 1x -run '^$$' .

# runcheck exercises the artifact provenance chain end to end: emit a
# small campaign pack, a difftest pack and a replay pack into ./runpacks,
# verify every one — including re-deriving each result in-process from
# its receipt — and replay the committed distilled-regression suite
# under the race detector. See docs/ARTIFACTS.md.
runcheck:
	rm -rf runpacks && mkdir -p runpacks
	$(GO) run ./cmd/faultcamp -seed 7 -n 20 -runpack runpacks
	$(GO) run ./cmd/difftest -runpack runpacks
	$(GO) run ./cmd/replay -record mpu_walk_region -runpack runpacks
	$(GO) run ./cmd/runpack ls runpacks
	$(GO) run ./cmd/runpack verify -rerun runpacks/*
	$(GO) test -race -run 'TestRegressions|TestRegressionFailsBeforeFix|TestCommittedPackContents' ./internal/runpack/
