GO ?= go

.PHONY: ci fmt vet build test race bench

# ci is the gate the concurrency-touching paths (parallel difftest
# campaign, goroutine-safe Stats, tracer) must keep green.
ci: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
