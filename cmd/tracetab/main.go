// Command tracetab runs a release-test application under the kernel
// event tracer and renders the recorded timeline — the debugging
// companion to the §6.1 differential campaign: instead of rerunning a
// diverging case under print statements, trace it and read the causal
// timeline (or load the Chrome JSON into chrome://tracing / Perfetto).
//
// Usage:
//
//	tracetab -list
//	tracetab -case mpu_walk_region [-flavour ticktock|tock] [-format text|chrome] [-cap N] [-o FILE]
//	         [-from-cycle N] [-to-cycle N]
//
// Examples:
//
//	tracetab -case grant_test                         # text timeline on stdout
//	tracetab -case blink -format chrome -o blink.json # open in chrome://tracing
//	tracetab -case timer_test -flavour tock           # trace the baseline kernel
//	tracetab -case blink -from-cycle 5000 -to-cycle 9000   # zoom into a window
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ticktock/internal/apps"
	"ticktock/internal/difftest"
	"ticktock/internal/kernel"
)

func main() {
	list := flag.Bool("list", false, "list the traceable release-test cases and exit")
	caseName := flag.String("case", "", "release-test case to trace (see -list)")
	flavour := flag.String("flavour", "ticktock", "kernel flavour: ticktock or tock")
	format := flag.String("format", "text", "output format: text or chrome")
	capacity := flag.Int("cap", 1<<17, "trace ring-buffer capacity in events")
	outPath := flag.String("o", "", "write output to FILE instead of stdout")
	fromCycle := flag.Uint64("from-cycle", 0, "only render events at or after this cycle")
	toCycle := flag.Uint64("to-cycle", ^uint64(0), "only render events at or before this cycle")
	flag.Parse()

	cases := apps.All()
	if *list {
		for _, tc := range cases {
			fmt.Println(tc.Name)
		}
		return
	}

	var tc *apps.TestCase
	for i := range cases {
		if cases[i].Name == *caseName {
			tc = &cases[i]
			break
		}
	}
	if tc == nil {
		fmt.Fprintf(os.Stderr, "tracetab: unknown case %q (use -list)\n", *caseName)
		os.Exit(2)
	}

	var fl kernel.Flavour
	switch *flavour {
	case "ticktock":
		fl = kernel.FlavourTickTock
	case "tock":
		fl = kernel.FlavourTock
	default:
		fmt.Fprintf(os.Stderr, "tracetab: unknown flavour %q\n", *flavour)
		os.Exit(2)
	}

	k, tr, err := difftest.RunTraced(*tc, fl, *capacity)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracetab: %v\n", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracetab: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	switch *format {
	case "text":
		err = tr.ExportTextWindow(w, *fromCycle, *toCycle)
	case "chrome":
		err = tr.ExportChromeJSONWindow(w, *fromCycle, *toCycle)
	default:
		fmt.Fprintf(os.Stderr, "tracetab: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracetab: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "traced %s on %s: %d events (%d dropped), %d context switches, %d cycles\n",
		tc.Name, fl, tr.Emitted(), tr.Dropped(), k.Switches, k.Meter().Cycles())
}
