// Command faultcamp runs the deterministic fault-injection campaign:
// seeded fault scenarios swept across both kernel ports, every injected
// fault classified against an uninjected baseline, and the isolation
// contracts re-checked after each injected run.
//
// Usage:
//
//	faultcamp [-seed N] [-n N] [-workers N] [-rows] [-metrics] [-replay]
//	          [-runpack DIR] [-distill DIR]
//
// The same seed reproduces a byte-identical report. The exit status is
// non-zero when any scenario hit an infrastructure error or — the hard
// gate — any isolation-contract violation. With -replay, every violating
// run is flight-recorded and the machine state immediately before the
// violation is replayed and printed — the time-travel view of how the
// contract broke.
//
// With -runpack DIR the campaign is sealed into a content-addressed
// artifact pack under DIR (verify it with `runpack verify`). With
// -distill DIR every scenario whose isolation sweep found violations is
// additionally distilled into a minimal regression pack under DIR.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ticktock/internal/difftest"
	"ticktock/internal/faultinject"
	"ticktock/internal/metrics"
	"ticktock/internal/runpack"
)

func main() {
	seed := flag.Int64("seed", 0, "campaign master seed")
	n := flag.Int("n", faultinject.DefaultScenarios, "number of scenarios")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	rows := flag.Bool("rows", false, "print the per-scenario cross-port table")
	metricsOut := flag.Bool("metrics", false, "print the fault_* series in Prometheus exposition format")
	replay := flag.Bool("replay", false, "flight-record violating runs and print their pre-violation state")
	packDir := flag.String("runpack", "", "seal the campaign into a content-addressed artifact pack under DIR")
	distillDir := flag.String("distill", "", "distill every violating scenario into a regression pack under DIR")
	flag.Parse()

	rep := faultinject.Run(faultinject.Config{Seed: *seed, N: *n, Workers: *workers, Record: *replay || *packDir != ""})
	fmt.Print(rep.Text())

	if *packDir != "" {
		dir, receipt, err := runpack.EmitFaultcamp(*packDir, rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultcamp: sealing runpack: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "runpack: %s\n%s\n", dir, receipt)
	}
	if *distillDir != "" {
		for _, res := range rep.Results {
			if len(res.ARM.Violations)+len(res.RV.Violations) == 0 {
				continue
			}
			dir, _, err := runpack.DistillScenario(*distillDir, rep.Config, res.Scenario.Index)
			if err != nil {
				fmt.Fprintf(os.Stderr, "faultcamp: distilling %s: %v\n", res.Scenario.Label(), err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "distilled %s -> %s\n", res.Scenario.Label(), dir)
		}
	}

	if *replay {
		for _, res := range rep.Results {
			for _, pr := range []faultinject.PortResult{res.ARM, res.RV} {
				if pr.Replay != nil {
					printViolationReplay(res.Scenario, pr)
				}
			}
		}
	}

	if *rows {
		fmt.Println()
		fmt.Print(difftest.Table(rep.Rows()))
	}
	if *metricsOut {
		reg := metrics.NewRegistry()
		rep.Publish(reg)
		fmt.Println()
		if err := reg.ExportPrometheus(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "faultcamp:", err)
			os.Exit(1)
		}
	}

	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "faultcamp: %d isolation violation(s)\n", len(rep.Violations))
		os.Exit(1)
	}
	if rep.ARM.Errors+rep.RV.Errors > 0 {
		fmt.Fprintf(os.Stderr, "faultcamp: %d scenario error(s)\n", rep.ARM.Errors+rep.RV.Errors)
		os.Exit(1)
	}
}

// printViolationReplay rewinds the violating run's recording to its final
// snapshot and dumps the machine state — what the world looked like when
// the isolation sweep caught the contract breach.
func printViolationReplay(sc faultinject.Scenario, pr faultinject.PortResult) {
	fmt.Printf("\nscenario #%d on %s violated isolation:\n", sc.Index, pr.Port)
	for _, v := range pr.Violations {
		fmt.Printf("  - %s\n", v)
	}
	s, err := pr.Replay.ReplayTo(pr.Replay.FinalCycle())
	if err != nil {
		fmt.Printf("  (replay failed: %v)\n", err)
		return
	}
	fmt.Printf("  replayed state at cycle %d (snapshot %d, %q):\n", s.Cycle, s.Index, s.Label)
	fields := s.Fields()
	sort.Slice(fields, func(i, j int) bool { return fields[i].Name < fields[j].Name })
	for _, f := range fields {
		fmt.Printf("    %-24s 0x%08x\n", f.Name, f.Val)
	}
	fmt.Printf("    %-24s 0x%016x\n", "mem.digest", s.MemDigest())
}
