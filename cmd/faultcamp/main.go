// Command faultcamp runs the deterministic fault-injection campaign:
// seeded fault scenarios swept across both kernel ports, every injected
// fault classified against an uninjected baseline, and the isolation
// contracts re-checked after each injected run.
//
// Usage:
//
//	faultcamp [-seed N] [-n N] [-workers N] [-rows] [-metrics] [-replay]
//	          [-runpack DIR] [-distill DIR]
//	          [-resume FILE] [-timeout D] [-retries N] [-stop-after N]
//	          [-quarantine DIR] [-chaos SPEC] [-serve ADDR] [-progress]
//
// The same seed reproduces a byte-identical report. The exit status is
// non-zero when any scenario hit an infrastructure error or — the hard
// gate — any isolation-contract violation; an *empty* campaign (no
// scenarios, or every injection skipped with nothing else to show)
// exits 2 with a distinct message, so a vacuously green run can never
// pass for evidence. With -replay, every violating run is
// flight-recorded and the machine state immediately before the
// violation is replayed and printed — the time-travel view of how the
// contract broke.
//
// With -serve ADDR a live telemetry server answers while the campaign
// runs: /metrics (Prometheus exposition of the streaming fleet
// aggregate), /progress (JSON progress snapshot), /healthz and
// /timeline (the merged wall-clock/kernel-event fleet trace in Chrome
// trace-event JSON). -progress renders a single-line live ticker to
// stderr. Both force the supervised path; neither changes the report —
// telemetry observes the campaign, it never steers it.
//
// Any of -resume, -timeout, -retries, -stop-after, -quarantine,
// -chaos, -serve or -progress runs the campaign under the
// crash-resilient supervisor
// (internal/campaign): per-scenario wall-clock timeouts, panic
// isolation, retry with exponential backoff and poison quarantine. With
// -resume FILE, completed scenarios are checkpointed to an fsync'd
// journal and an interrupted campaign continues from where it stopped —
// with byte-identical final output at any worker count. Quarantined
// scenarios never fail the campaign; with -quarantine DIR each one is
// sealed as a content-addressed bug-report pack. -chaos injects
// failures into the campaign machinery itself ("wedge:3,panic:5") to
// exercise those paths end to end.
//
// With -runpack DIR the campaign is sealed into a content-addressed
// artifact pack under DIR (verify it with `runpack verify`). With
// -distill DIR every scenario whose isolation sweep found violations is
// additionally distilled into a minimal regression pack under DIR.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"ticktock/internal/campaign"
	"ticktock/internal/difftest"
	"ticktock/internal/faultinject"
	"ticktock/internal/metrics"
	"ticktock/internal/runpack"
	"ticktock/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("faultcamp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 0, "campaign master seed")
	n := fs.Int("n", faultinject.DefaultScenarios, "number of scenarios")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	rows := fs.Bool("rows", false, "print the per-scenario cross-port table")
	metricsOut := fs.Bool("metrics", false, "print the fault_* and campaign_* series in Prometheus exposition format")
	replay := fs.Bool("replay", false, "flight-record violating runs and print their pre-violation state")
	packDir := fs.String("runpack", "", "seal the campaign into a content-addressed artifact pack under DIR")
	distillDir := fs.String("distill", "", "distill every violating scenario into a regression pack under DIR")
	resume := fs.String("resume", "", "resumable campaign journal FILE: checkpoint completed scenarios there and continue an interrupted campaign instead of restarting it")
	timeout := fs.Duration("timeout", 0, "per-scenario wall-clock timeout; a wedged scenario is cancelled and classified timeout (0 = unbounded)")
	retries := fs.Int("retries", 0, "retry budget per scenario; a scenario failing every attempt is quarantined, never fatal")
	stopAfter := fs.Int("stop-after", 0, "checkpoint and stop after N newly completed scenarios (pair with -resume to continue)")
	quarantineDir := fs.String("quarantine", "", "seal every quarantined scenario as a bug-report runpack under DIR")
	chaos := fs.String("chaos", "", `inject failures into the campaign machinery itself, e.g. "wedge:3,panic:5,flaky:7"`)
	serve := fs.String("serve", "", "serve live telemetry on ADDR while the campaign runs (/metrics, /progress, /healthz, /timeline); the bound address is printed to stderr")
	progress := fs.Bool("progress", false, "render a single-line live progress ticker to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *n <= 0 {
		fmt.Fprintf(stderr, "faultcamp: empty campaign: -n %d selects no scenarios (use -n >= 1)\n", *n)
		return 2
	}

	cfg := faultinject.Config{
		Seed: *seed, N: *n, Workers: *workers,
		Record: *replay || *packDir != "",
		Chaos:  *chaos,
	}
	sup := campaign.Config{
		Timeout: *timeout, Retries: *retries,
		Journal: *resume, StopAfter: *stopAfter,
	}
	supervised := *resume != "" || *timeout > 0 || *retries > 0 ||
		*stopAfter > 0 || *quarantineDir != "" || *chaos != "" ||
		*serve != "" || *progress

	var plane *telemetry.Plane
	if *serve != "" || *progress {
		plane = telemetry.New()
	}
	if *serve != "" {
		srv, err := telemetry.Serve(*serve, plane)
		if err != nil {
			fmt.Fprintf(stderr, "faultcamp: telemetry server: %v\n", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "telemetry: serving http://%s\n", srv.Addr())
	}

	var rep *faultinject.Report
	var supRun *campaign.Run[faultinject.Result]
	if supervised {
		tty := (*telemetry.TTY)(nil)
		if *progress {
			tty = telemetry.StartTTY(stderr, plane, 0)
		}
		var err error
		rep, supRun, err = faultinject.RunSupervisedTelemetry(cfg, sup, plane)
		tty.Stop()
		if err != nil {
			fmt.Fprintf(stderr, "faultcamp: %v\n", err)
			return 1
		}
	} else {
		rep = faultinject.Run(cfg)
	}
	fmt.Fprint(stdout, rep.Text())

	if *packDir != "" {
		var dir, receipt string
		var err error
		if supervised {
			dir, receipt, err = runpack.EmitFaultcampSupervised(*packDir, rep, sup)
		} else {
			dir, receipt, err = runpack.EmitFaultcamp(*packDir, rep)
		}
		if err != nil {
			fmt.Fprintf(stderr, "faultcamp: sealing runpack: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "runpack: %s\n%s\n", dir, receipt)
	}
	if *quarantineDir != "" && supRun != nil {
		for _, o := range supRun.Quarantined() {
			dir, _, err := runpack.EmitQuarantine(*quarantineDir, cfg, o)
			if err != nil {
				fmt.Fprintf(stderr, "faultcamp: sealing quarantine pack for %s: %v\n", o.Key, err)
				return 1
			}
			fmt.Fprintf(stderr, "quarantined %s -> %s\n", o.Key, dir)
		}
	}
	if *distillDir != "" {
		for _, res := range rep.Results {
			if len(res.ARM.Violations)+len(res.RV.Violations) == 0 {
				continue
			}
			dir, _, err := runpack.DistillScenario(*distillDir, rep.Config, res.Scenario.Index)
			if err != nil {
				fmt.Fprintf(stderr, "faultcamp: distilling %s: %v\n", res.Scenario.Label(), err)
				return 1
			}
			fmt.Fprintf(stderr, "distilled %s -> %s\n", res.Scenario.Label(), dir)
		}
	}

	if *replay {
		for _, res := range rep.Results {
			for _, pr := range []faultinject.PortResult{res.ARM, res.RV} {
				if pr.Replay != nil {
					printViolationReplay(stdout, res.Scenario, pr)
				}
			}
		}
	}

	if *rows {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, difftest.Table(rep.Rows()))
	}
	if *metricsOut {
		reg := metrics.NewRegistry()
		rep.Publish(reg)
		if supRun != nil {
			supRun.Stats.Publish(reg)
		}
		fmt.Fprintln(stdout)
		if err := reg.ExportPrometheus(stdout); err != nil {
			fmt.Fprintln(stderr, "faultcamp:", err)
			return 1
		}
	}

	if supRun != nil && supRun.Interrupted {
		fmt.Fprintf(stderr, "faultcamp: campaign interrupted after %d newly completed scenario(s); continue with -resume %s\n",
			supRun.Stats.Completed, *resume)
	}
	if len(rep.Violations) > 0 {
		fmt.Fprintf(stderr, "faultcamp: %d isolation violation(s)\n", len(rep.Violations))
		return 1
	}
	if rep.ARM.Errors+rep.RV.Errors > 0 {
		fmt.Fprintf(stderr, "faultcamp: %d scenario error(s)\n", rep.ARM.Errors+rep.RV.Errors)
		return 1
	}
	if rep.Empty() {
		fmt.Fprintf(stderr, "faultcamp: empty campaign: every injection was skipped and nothing else was observed — a vacuous pass is not evidence\n")
		return 2
	}
	return 0
}

// printViolationReplay rewinds the violating run's recording to its final
// snapshot and dumps the machine state — what the world looked like when
// the isolation sweep caught the contract breach.
func printViolationReplay(w io.Writer, sc faultinject.Scenario, pr faultinject.PortResult) {
	fmt.Fprintf(w, "\nscenario #%d on %s violated isolation:\n", sc.Index, pr.Port)
	for _, v := range pr.Violations {
		fmt.Fprintf(w, "  - %s\n", v)
	}
	s, err := pr.Replay.ReplayTo(pr.Replay.FinalCycle())
	if err != nil {
		fmt.Fprintf(w, "  (replay failed: %v)\n", err)
		return
	}
	fmt.Fprintf(w, "  replayed state at cycle %d (snapshot %d, %q):\n", s.Cycle, s.Index, s.Label)
	fields := s.Fields()
	sort.Slice(fields, func(i, j int) bool { return fields[i].Name < fields[j].Name })
	for _, f := range fields {
		fmt.Fprintf(w, "    %-24s 0x%08x\n", f.Name, f.Val)
	}
	fmt.Fprintf(w, "    %-24s 0x%016x\n", "mem.digest", s.MemDigest())
}
