// Command faultcamp runs the deterministic fault-injection campaign:
// seeded fault scenarios swept across both kernel ports, every injected
// fault classified against an uninjected baseline, and the isolation
// contracts re-checked after each injected run.
//
// Usage:
//
//	faultcamp [-seed N] [-n N] [-workers N] [-rows] [-metrics]
//
// The same seed reproduces a byte-identical report. The exit status is
// non-zero when any scenario hit an infrastructure error or — the hard
// gate — any isolation-contract violation.
package main

import (
	"flag"
	"fmt"
	"os"

	"ticktock/internal/difftest"
	"ticktock/internal/faultinject"
	"ticktock/internal/metrics"
)

func main() {
	seed := flag.Int64("seed", 0, "campaign master seed")
	n := flag.Int("n", faultinject.DefaultScenarios, "number of scenarios")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	rows := flag.Bool("rows", false, "print the per-scenario cross-port table")
	metricsOut := flag.Bool("metrics", false, "print the fault_* series in Prometheus exposition format")
	flag.Parse()

	rep := faultinject.Run(faultinject.Config{Seed: *seed, N: *n, Workers: *workers})
	fmt.Print(rep.Text())

	if *rows {
		fmt.Println()
		fmt.Print(difftest.Table(rep.Rows()))
	}
	if *metricsOut {
		reg := metrics.NewRegistry()
		rep.Publish(reg)
		fmt.Println()
		if err := reg.ExportPrometheus(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "faultcamp:", err)
			os.Exit(1)
		}
	}

	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "faultcamp: %d isolation violation(s)\n", len(rep.Violations))
		os.Exit(1)
	}
	if rep.ARM.Errors+rep.RV.Errors > 0 {
		fmt.Fprintf(os.Stderr, "faultcamp: %d scenario error(s)\n", rep.ARM.Errors+rep.RV.Errors)
		os.Exit(1)
	}
}
