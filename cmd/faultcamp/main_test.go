package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ticktock/internal/faultinject"
	"ticktock/internal/metrics"
	"ticktock/internal/runpack"
	"ticktock/internal/telemetry"
)

// runCLI invokes the faultcamp entry point against buffers.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestEmptyCampaignExitsDistinctly pins satellite fix 2: -n 0 used to
// silently fall back to the 500-scenario default (withDefaults maps
// N==0 to DefaultScenarios) and exit 0; now an empty campaign is a
// distinct non-zero exit with a clear message, on a channel separate
// from real failures (which exit 1).
func TestEmptyCampaignExitsDistinctly(t *testing.T) {
	for _, n := range []string{"0", "-3"} {
		code, _, stderr := runCLI(t, "-n", n)
		if code != 2 {
			t.Fatalf("-n %s: exit %d, want 2", n, code)
		}
		if !strings.Contains(stderr, "empty campaign") {
			t.Fatalf("-n %s: stderr %q lacks the empty-campaign message", n, stderr)
		}
	}
}

func TestSmallCampaignPasses(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-seed", "42", "-n", "6")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "fault-injection campaign: 6 scenarios") {
		t.Fatalf("stdout:\n%s", stdout)
	}
}

// TestKillAndResumeCLI drives the resumable manifest end to end through
// the CLI: interrupt with -stop-after, resume with a different worker
// count, and require the resumed report to be byte-identical to a
// straight-through supervised run (and to print campaign_resumed_total
// in the metrics exposition).
func TestKillAndResumeCLI(t *testing.T) {
	straightCode, straight, stderr := runCLI(t, "-seed", "42", "-n", "8", "-retries", "1")
	if straightCode != 0 {
		t.Fatalf("straight run exit %d, stderr:\n%s", straightCode, stderr)
	}

	journal := filepath.Join(t.TempDir(), "campaign.journal")
	code, _, stderr := runCLI(t, "-seed", "42", "-n", "8", "-retries", "1",
		"-workers", "2", "-resume", journal, "-stop-after", "3")
	if code != 0 {
		t.Fatalf("interrupted run exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "interrupted") || !strings.Contains(stderr, "-resume") {
		t.Fatalf("interrupted run stderr lacks resume hint:\n%s", stderr)
	}

	code, resumed, stderr := runCLI(t, "-seed", "42", "-n", "8", "-retries", "1",
		"-workers", "5", "-resume", journal, "-metrics")
	if code != 0 {
		t.Fatalf("resumed run exit %d, stderr:\n%s", code, stderr)
	}
	report, metricsPart, ok := strings.Cut(resumed, "\n\n# TYPE campaign_")
	if !ok {
		t.Fatalf("resumed output has no campaign_* metrics:\n%s", resumed)
	}
	if report+"\n" != straight {
		t.Fatalf("resumed report differs from straight run\n got:\n%s\nwant:\n%s", report, straight)
	}
	// The resume restored at least the 3 checkpointed scenarios.
	if strings.Contains(metricsPart, "resumed_total 0\n") || !strings.Contains(metricsPart, "resumed_total") {
		t.Fatalf("metrics lack a non-zero campaign_resumed_total:\ncampaign_%s", metricsPart)
	}
}

// TestChaosQuarantinePacks seeds a wedge and a panic into the campaign
// machinery, and requires: exit 0 (quarantine never fails the
// campaign), the supervision section in the report, and a sealed,
// verifiable bug-report pack per quarantined scenario.
func TestChaosQuarantinePacks(t *testing.T) {
	qdir := t.TempDir()
	code, stdout, stderr := runCLI(t, "-seed", "42", "-n", "6",
		"-chaos", "wedge:1,panic:4", "-timeout", "500ms", "-retries", "1",
		"-quarantine", qdir)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "quarantined=2") {
		t.Fatalf("report lacks quarantine tally:\n%s", stdout)
	}
	packs, err := runpack.List(qdir)
	if err != nil || len(packs) != 2 {
		t.Fatalf("quarantine packs: %v %v", packs, err)
	}
	for _, dir := range packs {
		if err := runpack.Verify(dir, runpack.VerifyOptions{Rerun: true}); err != nil {
			t.Fatalf("verify %s: %v", dir, err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, "attempts.json"))
		if err != nil || !strings.Contains(string(raw), "failure") {
			t.Fatalf("attempts evidence in %s: %v", dir, err)
		}
	}
}

// TestSupervisedRunpackSealsAndVerifies seals a chaos campaign with
// -runpack and requires the full chain — including the -rerun
// re-derivation through the supervised receipt command — to verify.
func TestSupervisedRunpackSealsAndVerifies(t *testing.T) {
	root := t.TempDir()
	code, _, stderr := runCLI(t, "-seed", "42", "-n", "6",
		"-chaos", "panic:2", "-retries", "1", "-runpack", root)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	packs, err := runpack.List(root)
	if err != nil || len(packs) != 1 {
		t.Fatalf("packs: %v %v", packs, err)
	}
	if err := runpack.Verify(packs[0], runpack.VerifyOptions{Rerun: true}); err != nil {
		t.Fatalf("verify -rerun: %v", err)
	}
	receipt, err := os.ReadFile(filepath.Join(packs[0], runpack.ReceiptName))
	if err != nil || !strings.Contains(string(receipt), "-chaos") {
		t.Fatalf("receipt should carry the chaos spec: %s (%v)", receipt, err)
	}
}

// lockedBuf is a goroutine-safe writer for streaming the CLI's stderr
// while the campaign runs in a background goroutine.
type lockedBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestServeAnswersMidRun drives the live telemetry surface end to end:
// a campaign with one wedged scenario (guaranteeing a minimum wall
// time) runs with -serve, and while it runs the test scrapes /healthz,
// /metrics, /progress and /timeline off the printed address and
// validates each payload. The campaign must still exit clean.
func TestServeAnswersMidRun(t *testing.T) {
	var stderr lockedBuf
	var stdout lockedBuf
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-seed", "42", "-n", "8", "-workers", "2",
			"-chaos", "wedge:0", "-timeout", "3s",
			"-serve", "127.0.0.1:0", "-progress",
		}, &stdout, &stderr)
	}()

	// The bound address is printed before the campaign starts.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no telemetry address printed; stderr:\n%s", stderr.String())
		}
		if _, rest, ok := strings.Cut(stderr.String(), "telemetry: serving http://"); ok {
			addr = strings.TrimSpace(strings.SplitN(rest, "\n", 2)[0])
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	get := func(path string) (string, *http.Response) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body), resp
	}

	if body, _ := get("/healthz"); strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz: %q", body)
	}

	body, resp := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("/metrics content type %q, want %q", ct, metrics.ContentType)
	}
	if _, err := metrics.ParsePrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, body)
	}

	body, _ = get("/progress")
	var pr telemetry.Progress
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatalf("/progress is not valid JSON: %v\n%s", err, body)
	}
	if pr.Kind != faultinject.SupervisedKind || pr.Units != 8 || pr.Workers != 2 {
		t.Fatalf("/progress fields: %+v", pr)
	}
	if !pr.Running {
		t.Fatalf("/progress mid-run reports not running: %+v", pr)
	}

	body, _ = get("/timeline")
	var tl struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &tl); err != nil {
		t.Fatalf("/timeline is not valid JSON: %v", err)
	}
	if len(tl.TraceEvents) == 0 {
		t.Fatal("/timeline has no events mid-run")
	}

	code := <-done
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "fault-injection campaign: 8 scenarios") {
		t.Fatalf("stdout:\n%s", stdout.String())
	}
}
