// Command benchtab regenerates the paper's Figure 11: average simulated
// CPU cycles per instrumented process-abstraction method, for TickTock
// (granular) vs Tock (monolithic baseline), over the release tests plus
// allocator-stressing workloads.
//
// Beyond the human-readable table it emits the machine-readable
// benchmark artifacts CI archives on every run:
//
//	benchtab                               # Figure 11 table on stdout
//	benchtab -json BENCH_kernel.json       # kernel method costs artifact
//	benchtab -accessmap-json BENCH_accessmap.json
//	benchtab -blockcache-json BENCH_blockcache.json
//	benchtab -validate BENCH_kernel.json,BENCH_accessmap.json,BENCH_blockcache.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ticktock/internal/armv7m"
	"ticktock/internal/armv8m"
	"ticktock/internal/benchjson"
	"ticktock/internal/corebench"
	"ticktock/internal/cyclebench"
	"ticktock/internal/mpu"
	"ticktock/internal/riscv"
)

func main() {
	jsonPath := flag.String("json", "", "write the kernel method-cost artifact (BENCH_kernel.json) to FILE")
	amPath := flag.String("accessmap-json", "", "write the access-map engine artifact (BENCH_accessmap.json) to FILE")
	bcPath := flag.String("blockcache-json", "", "write the block-cache fast-core artifact (BENCH_blockcache.json) to FILE")
	validate := flag.String("validate", "", "comma-separated artifact files to parse and validate, then exit")
	flag.Parse()

	if *validate != "" {
		for _, path := range strings.Split(*validate, ",") {
			path = strings.TrimSpace(path)
			f, err := benchjson.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
				os.Exit(1)
			}
			// The blockcache artifact is committed to pin the fast-core
			// acceptance ratio, so validation enforces the floor the
			// speedup guard tests against — a committed row under 5x is
			// as much a regression as a failing guard.
			if f.Suite == "blockcache" {
				for _, row := range f.Rows {
					if row.Speedup < 5 {
						fmt.Fprintf(os.Stderr, "benchtab: %s: row %s records %.1fx speedup (floor is 5x)\n", path, row.Name, row.Speedup)
						os.Exit(1)
					}
				}
			}
			fmt.Printf("%s: suite %s, %d rows, schema %d — ok\n", path, f.Suite, len(f.Rows), f.Schema)
		}
		return
	}

	if *amPath != "" {
		if err := benchjson.WriteFile(*amPath, accessmapArtifact()); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *amPath)
		if *jsonPath == "" && *bcPath == "" {
			return
		}
	}

	if *bcPath != "" {
		if err := benchjson.WriteFile(*bcPath, blockcacheArtifact()); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *bcPath)
		if *jsonPath == "" {
			return
		}
	}

	if *jsonPath != "" {
		rows, err := cyclebench.JSONRows()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		f := &benchjson.File{Schema: benchjson.Schema, Suite: "kernel", Rows: rows}
		if err := benchjson.WriteFile(*jsonPath, f); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		return
	}

	rows, err := cyclebench.Compare()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("Figure 11: Average CPU cycles for process tasks")
	fmt.Print(cyclebench.Table(rows))
	fmt.Println("\n(simulated deterministic cycle model; compare shapes, not absolutes)")
}

// The access-map artifact times the interval engine against the per-byte
// oracle on the 64 KiB acceptance query, per port — the same setup as
// BenchmarkAccessMap, reduced to one artifact row per port.
const (
	amQueryBase = 0x2000_0000
	amQueryLen  = 64 * 1024
	rvQueryBase = 0x8000_0000
)

func accessmapArtifact() *benchjson.File {
	v7 := armv7m.NewMPUHardware()
	v7.CtrlEnable = true
	rasr := uint32(15)<<armv7m.RASRSizeShift | armv7m.EncodeAP(mpu.ReadWriteOnly) | armv7m.RASREnable
	if err := v7.WriteRegion(0, amQueryBase, rasr); err != nil {
		panic(err)
	}

	v8 := armv8m.NewMPUHardware()
	v8.CtrlEnable = true
	limit := uint32(amQueryBase + amQueryLen - armv8m.Granule)
	if err := v8.WriteRegion(0, amQueryBase|armv8m.EncodeRBAR(mpu.ReadWriteOnly), limit|armv8m.RLAREnable); err != nil {
		panic(err)
	}

	pm := riscv.NewPMP(riscv.ChipHiFive1)
	reg, err := riscv.EncodeNAPOT(rvQueryBase, amQueryLen)
	if err != nil {
		panic(err)
	}
	if err := pm.SetEntry(0, riscv.EncodeCfg(mpu.ReadWriteOnly, riscv.ANapot), reg); err != nil {
		panic(err)
	}

	type port struct {
		name     string
		base     uint32
		interval func(start, length uint32) bool
		bytescan func(start, length uint32) bool
	}
	ports := []port{
		{"armv7m", amQueryBase,
			func(s, l uint32) bool { return v7.AccessibleUser(s, l, mpu.AccessWrite) },
			func(s, l uint32) bool { return v7.AccessibleUserByteScan(s, l, mpu.AccessWrite) }},
		{"armv8m", amQueryBase,
			func(s, l uint32) bool { return v8.AccessibleUser(s, l, mpu.AccessWrite) },
			func(s, l uint32) bool { return v8.AccessibleUserByteScan(s, l, mpu.AccessWrite) }},
		{"riscv", rvQueryBase,
			func(s, l uint32) bool { return pm.AccessibleUser(s, l, mpu.AccessWrite) },
			func(s, l uint32) bool { return pm.AccessibleUserByteScan(s, l, mpu.AccessWrite) }},
	}

	f := &benchjson.File{Schema: benchjson.Schema, Suite: "accessmap"}
	for _, pt := range ports {
		intervalNs := timeQuery(pt.interval, pt.base, 2000)
		scanNs := timeQuery(pt.bytescan, pt.base, 3)
		speedup := 0.0
		if intervalNs > 0 {
			speedup = scanNs / intervalNs
		}
		f.Rows = append(f.Rows, benchjson.Row{
			Name:    "accessmap/" + pt.name,
			NsPerOp: intervalNs,
			Speedup: speedup,
		})
	}
	return f
}

// The block-cache artifact measures the fast core against the oracle
// core on the corebench preemptive workloads — the same measurement
// TestBlockCacheSpeedupGuard pins at >= 5x. NsPerOp is the fast core's
// wall nanoseconds per thousand simulated cycles; Speedup is the
// oracle-vs-fast ratio on that metric.
func blockcacheArtifact() *benchjson.File {
	f := &benchjson.File{Schema: benchjson.Schema, Suite: "blockcache"}
	ports := []struct {
		name      string
		newRunner func(fast bool) corebench.Runner
	}{
		{"armv7m", corebench.NewARMRunner},
		{"rv32", corebench.NewRVRunner},
	}
	for _, pt := range ports {
		// Retry like the speedup guard: contention only ever lowers a
		// measured ratio, so the first quiet attempt is the real one.
		var fast corebench.Result
		var ratio float64
		for attempt := 0; attempt < 3; attempt++ {
			_, fast, ratio = corebench.Speedup(pt.newRunner, 10, 5)
			if ratio >= 5 {
				break
			}
		}
		f.Rows = append(f.Rows, benchjson.Row{
			Name:      "blockcache/" + pt.name,
			NsPerOp:   fast.NsPerKCycle(),
			SimCycles: float64(fast.SimCycles),
			Speedup:   ratio,
		})
	}
	return f
}

// timeQuery returns the best-of-3 mean wall nanoseconds per query.
func timeQuery(q func(start, length uint32) bool, base uint32, iters int) float64 {
	best := time.Duration(1<<63 - 1)
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if !q(base, amQueryLen) {
				panic("span not accessible")
			}
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(iters)
}
