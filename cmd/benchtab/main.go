// Command benchtab regenerates the paper's Figure 11: average simulated
// CPU cycles per instrumented process-abstraction method, for TickTock
// (granular) vs Tock (monolithic baseline), over the release tests plus
// allocator-stressing workloads.
package main

import (
	"fmt"
	"os"

	"ticktock/internal/cyclebench"
)

func main() {
	rows, err := cyclebench.Compare()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("Figure 11: Average CPU cycles for process tasks")
	fmt.Print(cyclebench.Table(rows))
	fmt.Println("\n(simulated deterministic cycle model; compare shapes, not absolutes)")
}
