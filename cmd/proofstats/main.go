// Command proofstats regenerates the paper's Figure 10: the proof-effort
// table — registered obligations (functions), trusted subsets, and
// contract (spec) line counts per component.
package main

import (
	"flag"
	"fmt"

	"ticktock/internal/specs"
)

func main() {
	flag.Parse()
	r := specs.BuildAll(specs.QuickScale)
	fmt.Printf("%-14s %8s %14s %16s\n", "Component", "Fns", "Fns(Trusted)", "Specs(Trusted)")
	var fns, tfns, lines, tlines int
	for _, row := range r.Effort() {
		fmt.Printf("%-14s %8d %14d %8d (%d)\n", row.Component, row.Fns, row.TrustedFns, row.SpecLines, row.TrustedSpecs)
		fns += row.Fns
		tfns += row.TrustedFns
		lines += row.SpecLines
		tlines += row.TrustedSpecs
	}
	fmt.Printf("%-14s %8d %14d %8d (%d)\n", "Total", fns, tfns, lines, tlines)
	fmt.Println("\n(Fns = registered proof obligations; Specs = contract lines in the registry)")
}
