// Command difftest runs the §6.1 differential-testing campaign: all 21
// release tests on both kernel flavours, comparing console outputs. It
// prints the campaign table and exits non-zero if any test's result does
// not match its expectation (16 identical, 5 legitimately differing).
//
// Usage:
//
//	difftest [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"ticktock/internal/difftest"
)

func main() {
	verbose := flag.Bool("v", false, "print both outputs for differing tests")
	flag.Parse()

	rows, err := difftest.RunAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "difftest: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(difftest.Table(rows))
	if *verbose {
		for _, r := range rows {
			if r.Equal {
				continue
			}
			fmt.Printf("\n--- %s (ticktock) ---\n%s--- %s (tock) ---\n%s", r.Name, r.TickTock, r.Name, r.Tock)
		}
	}
	if s := difftest.Summarize(rows); s.Unexpected > 0 {
		os.Exit(1)
	}
}
