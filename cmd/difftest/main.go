// Command difftest runs the §6.1 differential-testing campaign: all 21
// release tests on both kernel flavours, comparing console outputs. It
// prints the campaign table and exits non-zero if any test's result does
// not match its expectation (16 identical, 5 legitimately differing) or
// any case failed to run.
//
// Unexpected mismatches come with a side-by-side kernel event trace of
// the two flavours (suppress with -notrace). The published baseline bugs
// can be re-enabled with -bug to watch the campaign catch them.
//
// Usage:
//
//	difftest [-v] [-j N] [-notrace] [-bug grant-overlap|brk-underflow|missed-mode-switch]
//	         [-runpack DIR] [-distill DIR] [-timeout D] [-retries N]
//	         [-serve ADDR] [-progress]
//	difftest -cores [-j N]
//
// With -cores the campaign diffs emulator cores instead of kernel
// flavours: every release test runs on both flavours under the trusted
// byte-scan oracle core and the block-cache fast core (docs/SPEED.md),
// and any divergence is a bug — exit 1 on the first non-ok row.
//
// With -timeout or -retries the campaign runs under the crash-resilient
// supervisor (internal/campaign): a wedged case is cancelled at the
// wall-clock bound, a panicking case is recovered, failed cases are
// retried up to the budget, and a case failing every attempt becomes an
// errored row instead of taking the pool down.
//
// With -serve ADDR a live telemetry server answers while the campaign
// runs: /metrics, /progress, /healthz and /timeline (see
// docs/OBSERVABILITY.md). -progress renders a single-line live ticker
// to stderr. Both force the supervised path; neither changes the rows.
//
// With -runpack DIR the campaign is sealed into a content-addressed
// artifact pack under DIR (verify it with `runpack verify`). With
// -distill DIR every row that misses its expectation is additionally
// bisected and distilled into a minimal regression pack under DIR.
package main

import (
	"flag"
	"fmt"
	"os"

	"ticktock/internal/campaign"
	"ticktock/internal/difftest"
	"ticktock/internal/runpack"
	"ticktock/internal/telemetry"
)

func main() {
	verbose := flag.Bool("v", false, "print both outputs for differing tests")
	workers := flag.Int("j", 0, "worker pool size (0 = GOMAXPROCS)")
	notrace := flag.Bool("notrace", false, "disable divergence trace dumps")
	bug := flag.String("bug", "", "re-enable a published baseline bug (grant-overlap, brk-underflow, missed-mode-switch)")
	packDir := flag.String("runpack", "", "seal the campaign into a content-addressed artifact pack under DIR")
	distillDir := flag.String("distill", "", "distill every unexpected divergence into a regression pack under DIR")
	timeout := flag.Duration("timeout", 0, "per-case wall-clock timeout under the campaign supervisor (0 = unsupervised)")
	retries := flag.Int("retries", 0, "retry budget per case under the campaign supervisor")
	cores := flag.Bool("cores", false, "diff the block-cache fast core against the byte-scan oracle core instead of kernel flavours")
	serve := flag.String("serve", "", "serve live telemetry on ADDR while the campaign runs (/metrics, /progress, /healthz, /timeline); the bound address is printed to stderr")
	progress := flag.Bool("progress", false, "render a single-line live progress ticker to stderr")
	flag.Parse()

	if *cores {
		rows := difftest.RunCoreOracle(*workers)
		fmt.Print(difftest.CoreOracleTable(rows))
		for _, r := range rows {
			if !r.OK() {
				os.Exit(1)
			}
		}
		return
	}

	cfg := difftest.Config{Workers: *workers, NoTraceDump: *notrace, Metrics: *packDir != ""}
	switch *bug {
	case "":
	case "grant-overlap":
		cfg.Bugs.GrantOverlap = true
	case "brk-underflow":
		cfg.Bugs.BrkUnderflow = true
	case "missed-mode-switch":
		cfg.Bugs.MissedModeSwitch = true
	default:
		fmt.Fprintf(os.Stderr, "difftest: unknown -bug %q\n", *bug)
		os.Exit(2)
	}

	var plane *telemetry.Plane
	if *serve != "" || *progress {
		plane = telemetry.New()
	}
	if *serve != "" {
		srv, err := telemetry.Serve(*serve, plane)
		if err != nil {
			fmt.Fprintf(os.Stderr, "difftest: telemetry server: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s\n", srv.Addr())
	}

	var rows []difftest.Row
	if *timeout > 0 || *retries > 0 || plane != nil {
		tty := (*telemetry.TTY)(nil)
		if *progress {
			tty = telemetry.StartTTY(os.Stderr, plane, 0)
		}
		var err error
		rows, _, err = difftest.RunAllSupervisedTelemetry(cfg, campaign.Config{Timeout: *timeout, Retries: *retries}, plane)
		tty.Stop()
		if err != nil {
			fmt.Fprintf(os.Stderr, "difftest: %v\n", err)
			os.Exit(1)
		}
	} else {
		rows = difftest.RunAllConfig(cfg)
	}
	fmt.Print(difftest.Table(rows))
	if *packDir != "" {
		dir, receipt, err := runpack.EmitDifftest(*packDir, cfg, rows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "difftest: sealing runpack: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "runpack: %s\n%s\n", dir, receipt)
	}
	if *distillDir != "" {
		for _, r := range rows {
			if r.Err != nil || r.OK() {
				continue
			}
			dir, _, err := runpack.DistillCase(*distillDir, r.Name, cfg.Bugs)
			if err != nil {
				fmt.Fprintf(os.Stderr, "difftest: distilling %s: %v\n", r.Name, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "distilled %s -> %s\n", r.Name, dir)
		}
	}
	for _, r := range rows {
		if *verbose && !r.Equal && r.Err == nil {
			fmt.Printf("\n--- %s (ticktock) ---\n%s--- %s (tock) ---\n%s", r.Name, r.TickTock, r.Name, r.Tock)
		}
		if r.Divergence != "" {
			fmt.Printf("\n=== %s divergence trace ===\n%s", r.Name, r.Divergence)
		}
		if r.BisectionText != "" {
			fmt.Printf("\n=== %s flight-recorder bisection ===\n%s\n", r.Name, r.BisectionText)
		}
	}
	if s := difftest.Summarize(rows); s.Unexpected > 0 || s.Errored > 0 {
		os.Exit(1)
	}
}
