// Command rvcampaign runs the RISC-V release-test campaign (the paper's
// §6.1 QEMU runs): a subset of the upstream applications on all three
// supported RV32 chips, verifying every app runs to its expected
// completion.
package main

import (
	"flag"
	"fmt"
	"os"

	"ticktock/internal/rvkernel"
)

func main() {
	verbose := flag.Bool("v", false, "print each app's console output")
	flag.Parse()

	rows, err := rvkernel.RunAllChips()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rvcampaign: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%-16s %-16s %-10s %s\n", "chip", "app", "state", "verdict")
	failed := 0
	for _, r := range rows {
		verdict := "ok"
		if !r.Completed() {
			verdict = "FAILED"
			failed++
		}
		fmt.Printf("%-16s %-16s %-10s %s\n", r.Chip, r.App, r.State, verdict)
		if *verbose && r.Output != "" {
			fmt.Printf("    %q\n", r.Output)
		}
	}
	fmt.Printf("\n%d runs, %d failed\n", len(rows), failed)
	if failed > 0 {
		os.Exit(1)
	}
}
