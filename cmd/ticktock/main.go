// Command ticktock boots the simulated board, loads a set of release-test
// applications, runs the kernel scheduler to completion and prints each
// process's console output and final state.
//
// Usage:
//
//	ticktock [-flavour ticktock|tock] [-list] [-quanta N] [test ...]
//
// With no test names, every release test runs. -list prints the available
// test names.
package main

import (
	"flag"
	"fmt"
	"os"

	"ticktock/internal/apps"
	"ticktock/internal/armv7m"
	"ticktock/internal/kernel"
)

func main() {
	flavour := flag.String("flavour", "ticktock", "kernel flavour: ticktock (granular) or tock (monolithic baseline)")
	list := flag.Bool("list", false, "list available tests and exit")
	quanta := flag.Int("quanta", 4000, "maximum scheduler quanta per test")
	sched := flag.String("scheduler", "round-robin", "scheduling discipline: round-robin, cooperative or priority")
	policy := flag.String("policy", "stop", "fault policy: stop or restart")
	stats := flag.Bool("stats", false, "print the instrumented method cycle table after each test")
	trace := flag.Bool("trace", false, "print every executed user instruction")
	flag.Parse()

	cases := apps.All()
	if *list {
		for _, tc := range cases {
			diff := ""
			if tc.ExpectDiff {
				diff = " (output differs across flavours)"
			}
			fmt.Printf("%s%s\n", tc.Name, diff)
		}
		return
	}

	var fl kernel.Flavour
	switch *flavour {
	case "ticktock":
		fl = kernel.FlavourTickTock
	case "tock":
		fl = kernel.FlavourTock
	default:
		fmt.Fprintf(os.Stderr, "ticktock: unknown flavour %q\n", *flavour)
		os.Exit(2)
	}
	var sc kernel.Scheduler
	switch *sched {
	case "round-robin":
		sc = kernel.SchedRoundRobin
	case "cooperative":
		sc = kernel.SchedCooperative
	case "priority":
		sc = kernel.SchedPriority
	default:
		fmt.Fprintf(os.Stderr, "ticktock: unknown scheduler %q\n", *sched)
		os.Exit(2)
	}
	var fp kernel.FaultPolicy
	switch *policy {
	case "stop":
		fp = kernel.PolicyStop
	case "restart":
		fp = kernel.PolicyRestart
	default:
		fmt.Fprintf(os.Stderr, "ticktock: unknown fault policy %q\n", *policy)
		os.Exit(2)
	}

	selected := cases
	if flag.NArg() > 0 {
		byName := map[string]apps.TestCase{}
		for _, tc := range cases {
			byName[tc.Name] = tc
		}
		selected = nil
		for _, name := range flag.Args() {
			tc, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "ticktock: unknown test %q (use -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, tc)
		}
	}

	failed := 0
	for _, tc := range selected {
		k, err := kernel.New(kernel.Options{Flavour: fl, Scheduler: sc, FaultPolicy: fp})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ticktock: %v\n", err)
			os.Exit(1)
		}
		if *trace {
			k.Board.Machine.Trace = func(pc uint32, in armv7m.Instr) {
				fmt.Printf("  0x%08x  %s\n", pc, in)
			}
		}
		var procs []*kernel.Process
		for _, app := range tc.Apps {
			p, err := k.LoadProcess(app)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ticktock: loading %s: %v\n", app.Name, err)
				os.Exit(1)
			}
			procs = append(procs, p)
		}
		q := tc.Quanta
		if q == 0 {
			q = *quanta
		}
		if _, err := k.Run(q); err != nil {
			fmt.Fprintf(os.Stderr, "ticktock: running %s: %v\n", tc.Name, err)
			failed++
			continue
		}
		fmt.Printf("=== %s (%s kernel, %d cycles) ===\n", tc.Name, fl, k.Meter().Cycles())
		for _, p := range procs {
			fmt.Printf("--- %s [%s]\n%s", p.Name, p.State, k.Output(p))
		}
		if *stats {
			fmt.Printf("--- cycles\n%s", k.Stats.String())
		}
		fmt.Println()
	}
	if failed > 0 {
		os.Exit(1)
	}
}
