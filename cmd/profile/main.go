// Command profile runs release-test cases with the cycle-accurate
// metrics subsystem attached and renders the result as a human table,
// Prometheus text exposition, or a folded-stack ("flamegraph") profile
// attributing every simulated cycle along flavour;process;window paths.
// Feed the folded output to any FlameGraph-compatible renderer
// (e.g. flamegraph.pl or speedscope).
//
// Usage:
//
//	profile -list
//	profile -case c_hello [-flavour ticktock|tock] [-format table|prometheus|folded]
//	profile -all [-format ...] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ticktock/internal/apps"
	"ticktock/internal/difftest"
	"ticktock/internal/kernel"
	"ticktock/internal/metrics"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "profile: "+format+"\n", args...)
	os.Exit(1)
}

func findCase(name string) (apps.TestCase, bool) {
	for _, tc := range apps.All() {
		if tc.Name == name {
			return tc, true
		}
	}
	return apps.TestCase{}, false
}

func parseFlavour(s string) (kernel.Flavour, error) {
	switch s {
	case "ticktock":
		return kernel.FlavourTickTock, nil
	case "tock":
		return kernel.FlavourTock, nil
	default:
		return 0, fmt.Errorf("unknown flavour %q (want ticktock or tock)", s)
	}
}

// render writes the registry/profile pair in the requested format.
func render(w io.Writer, format string, reg *metrics.Registry, prof *metrics.Profile) error {
	switch format {
	case "table":
		if err := reg.ExportTable(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nfolded-stack cycle profile (%d cycles total):\n", prof.Total())
		return prof.ExportFolded(w)
	case "prometheus":
		return reg.ExportPrometheus(w)
	case "folded":
		return prof.ExportFolded(w)
	default:
		return fmt.Errorf("unknown format %q (want table, prometheus or folded)", format)
	}
}

func main() {
	list := flag.Bool("list", false, "list the release-test case names and exit")
	caseName := flag.String("case", "", "run one named case")
	all := flag.Bool("all", false, "run the whole campaign on both flavours and merge the snapshots")
	flavourName := flag.String("flavour", "ticktock", "kernel flavour for -case (ticktock or tock)")
	format := flag.String("format", "table", "output format: table, prometheus or folded")
	out := flag.String("o", "", "write output to FILE instead of stdout")
	workers := flag.Int("workers", 0, "campaign worker pool size for -all (0 = GOMAXPROCS)")
	flag.Parse()

	if *list {
		for _, tc := range apps.All() {
			fmt.Println(tc.Name)
		}
		return
	}
	if (*caseName == "") == !*all {
		fatalf("exactly one of -case or -all is required (or -list); see -h")
	}

	var reg *metrics.Registry
	var prof *metrics.Profile
	switch {
	case *caseName != "":
		tc, ok := findCase(*caseName)
		if !ok {
			fatalf("unknown case %q; -list shows the available names", *caseName)
		}
		fl, err := parseFlavour(*flavourName)
		if err != nil {
			fatalf("%v", err)
		}
		k, r, err := difftest.RunMeasured(tc, fl)
		if err != nil {
			fatalf("%v", err)
		}
		reg, prof = r, k.Profile()
	case *all:
		rows := difftest.RunAllConfig(difftest.Config{Metrics: true, Workers: *workers})
		for _, r := range rows {
			if r.Err != nil {
				fatalf("%s: %v", r.Name, r.Err)
			}
		}
		reg, prof = difftest.MergeMetrics(rows), difftest.MergeProfiles(rows)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("%v", err)
			}
		}()
		w = f
	}
	if err := render(w, *format, reg, prof); err != nil {
		fatalf("%v", err)
	}
}
