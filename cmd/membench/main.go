// Command membench regenerates the paper's §6.2 memory-usage
// microbenchmark: a process grows its memory one byte at a time until the
// kernel refuses, on TickTock, Tock, and TickTock padded to match Tock's
// total allocation.
package main

import (
	"fmt"
	"os"

	"ticktock/internal/membench"
)

func main() {
	rows, err := membench.RunAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "membench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("Memory microbenchmark (§6.2): grow-by-1-byte-until-failure")
	fmt.Print(membench.Table(rows))

	rv, err := membench.RunAllRISCV()
	if err != nil {
		fmt.Fprintf(os.Stderr, "membench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nRISC-V chips (PMP granularity comparison):")
	rvRows := make([]membench.Result, 0, len(rv))
	for _, r := range rv {
		rvRows = append(rvRows, r.Result)
	}
	fmt.Print(membench.Table(rvRows))
}
