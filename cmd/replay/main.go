// Command replay is the time-travel debugger for flight recordings:
// record a release-test case to a .ttfr file, then rewind the recording
// to any simulated cycle, step forward snapshot by snapshot, and diff
// two recordings to the first divergent field — all without re-running
// the kernel, so an injected fault or a heisenbug replays exactly as it
// was captured.
//
// Usage:
//
//	replay -record CASE [-flavour ticktock|tock] -o FILE
//	replay -in FILE [-to-cycle N] [-step K] [-format table|json]
//	replay -diff A,B [-format table|json]
//
// Examples:
//
//	replay -record mpu_walk_region -o clean.ttfr
//	replay -in clean.ttfr -to-cycle 12000            # machine state at cycle 12000
//	replay -in clean.ttfr -to-cycle 12000 -step 3    # ...then 3 quanta later
//	replay -diff clean.ttfr,buggy.ttfr               # bisect to first divergence
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"ticktock/internal/apps"
	"ticktock/internal/difftest"
	"ticktock/internal/flightrec"
	"ticktock/internal/kernel"
	"ticktock/internal/runpack"
)

func main() {
	record := flag.String("record", "", "record this release-test case to -o")
	flavour := flag.String("flavour", "ticktock", "kernel flavour when recording: ticktock or tock")
	outPath := flag.String("o", "", "output file for -record")
	packDir := flag.String("runpack", "", "seal the recording into a content-addressed artifact pack under DIR")
	inPath := flag.String("in", "", "recording to replay")
	toCycle := flag.Uint64("to-cycle", ^uint64(0), "replay to the last snapshot at or before this cycle")
	step := flag.Int("step", 0, "after positioning, step forward this many snapshots")
	diff := flag.String("diff", "", "two recordings A,B to bisect to their first divergence")
	format := flag.String("format", "table", "output format: table or json")
	flag.Parse()

	switch {
	case *record != "":
		if err := doRecord(*record, *flavour, *outPath, *packDir); err != nil {
			fail(err)
		}
	case *diff != "":
		if err := doDiff(*diff, *format); err != nil {
			fail(err)
		}
	case *inPath != "":
		if err := doReplay(*inPath, *toCycle, *step, *format); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "replay: %v\n", err)
	os.Exit(1)
}

func doRecord(caseName, flavour, outPath, packDir string) error {
	if outPath == "" && packDir == "" {
		return fmt.Errorf("-record needs -o FILE or -runpack DIR")
	}
	var tc *apps.TestCase
	all := apps.All()
	for i := range all {
		if all[i].Name == caseName {
			tc = &all[i]
			break
		}
	}
	if tc == nil {
		return fmt.Errorf("unknown case %q", caseName)
	}
	var fl kernel.Flavour
	switch flavour {
	case "ticktock":
		fl = kernel.FlavourTickTock
	case "tock":
		fl = kernel.FlavourTock
	default:
		return fmt.Errorf("unknown flavour %q", flavour)
	}
	k, rec, err := difftest.RunRecorded(*tc, fl, difftest.Config{})
	if err != nil {
		return err
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.Encode(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "recorded %s on %s: %d snapshots, %d events, final cycle %d -> %s\n",
			tc.Name, fl, len(rec.Snapshots), len(rec.Events), k.Meter().Cycles(), outPath)
	}
	if packDir != "" {
		dir, receipt, err := runpack.EmitReplay(packDir, tc.Name, fl, rec)
		if err != nil {
			return fmt.Errorf("sealing runpack: %w", err)
		}
		fmt.Fprintf(os.Stderr, "runpack: %s\n%s\n", dir, receipt)
	}
	return nil
}

func load(path string) (*flightrec.Recording, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rec, err := flightrec.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

// stateView is the JSON shape of one replayed machine state.
type stateView struct {
	Port      string            `json:"port"`
	Snapshot  int               `json:"snapshot"`
	Cycle     uint64            `json:"cycle"`
	Label     string            `json:"label"`
	MemDigest string            `json:"mem_digest"`
	Pages     int               `json:"pages"`
	Fields    map[string]uint64 `json:"fields"`
}

func view(rec *flightrec.Recording, s *flightrec.State) stateView {
	v := stateView{
		Port:      rec.Port,
		Snapshot:  s.Index,
		Cycle:     s.Cycle,
		Label:     s.Label,
		MemDigest: fmt.Sprintf("0x%016x", s.MemDigest()),
		Pages:     len(s.PageBases()),
		Fields:    make(map[string]uint64),
	}
	for _, f := range s.Fields() {
		v.Fields[f.Name] = f.Val
	}
	return v
}

func doReplay(path string, toCycle uint64, step int, format string) error {
	rec, err := load(path)
	if err != nil {
		return err
	}
	if toCycle > rec.FinalCycle() {
		toCycle = rec.FinalCycle()
	}
	s, err := rec.ReplayTo(toCycle)
	if err != nil {
		return err
	}
	for i := 0; i < step; i++ {
		if !s.Step() {
			fmt.Fprintf(os.Stderr, "replay: end of recording after %d steps\n", i)
			break
		}
	}
	switch format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(view(rec, s))
	case "table":
		printState(rec, s)
		return nil
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

func printState(rec *flightrec.Recording, s *flightrec.State) {
	fmt.Printf("port %s  snapshot %d/%d  cycle %d  label %q\n",
		rec.Port, s.Index, len(rec.Snapshots)-1, s.Cycle, s.Label)
	fmt.Printf("memory: %d pages, digest 0x%016x\n\n", len(s.PageBases()), s.MemDigest())
	fields := s.Fields()
	sort.Slice(fields, func(i, j int) bool { return fields[i].Name < fields[j].Name })
	w := 0
	for _, f := range fields {
		if len(f.Name) > w {
			w = len(f.Name)
		}
	}
	for _, f := range fields {
		fmt.Printf("  %-*s  0x%08x\n", w, f.Name, f.Val)
	}
}

func doDiff(pair, format string) error {
	parts := strings.Split(pair, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-diff wants exactly two files: A,B")
	}
	a, err := load(strings.TrimSpace(parts[0]))
	if err != nil {
		return err
	}
	b, err := load(strings.TrimSpace(parts[1]))
	if err != nil {
		return err
	}
	div, err := flightrec.Bisect(a, b, nil)
	if err != nil {
		return err
	}
	if format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if div == nil {
			return enc.Encode(map[string]any{"divergence": nil})
		}
		return enc.Encode(map[string]any{"divergence": div, "report": div.String()})
	}
	if div == nil {
		fmt.Println("recordings are identical")
		return nil
	}
	fmt.Println(div.String())
	// Show the full field delta at the divergent snapshot for context.
	sa, errA := a.ReplayAt(div.Index)
	sb, errB := b.ReplayAt(div.Index)
	if errA != nil || errB != nil {
		return nil
	}
	diffs := flightrec.CompareStates(sa, sb, nil)
	fmt.Printf("\n%d fields differ at snapshot %d:\n", len(diffs), div.Index)
	for _, d := range diffs {
		fmt.Printf("  %-24s  A=0x%08x  B=0x%08x\n", d.Name, d.A, d.B)
	}
	return nil
}
