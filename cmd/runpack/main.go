// Command runpack inspects and verifies the content-addressed artifact
// directories ("packs") that cmd/faultcamp, cmd/difftest and cmd/replay
// emit. A pack's manifest digests every member file; its receipt names
// the manifest and the exact in-process command that re-derives the
// result, so a pack can be audited end-to-end long after the run.
//
// Usage:
//
//	runpack verify [-rerun] [-v] DIR...
//	runpack ls ROOT
//	runpack show DIR
//
// verify re-checks the whole integrity chain — directory name, receipt,
// member digests, recording replays, benchjson self-digests — and exits
// non-zero on the first mismatch; a single flipped byte anywhere in a
// manifest-covered file fails the pack. With -rerun it also re-executes
// the receipt's command in-process and requires the re-derived result
// to hash identically. ls lists the packs under a root; show prints one
// pack's receipt and manifest summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ticktock/internal/runpack"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "verify":
		doVerify(os.Args[2:])
	case "ls":
		doLs(os.Args[2:])
	case "show":
		doShow(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: runpack verify [-rerun] [-v] DIR... | runpack ls ROOT | runpack show DIR")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "runpack: %v\n", err)
	os.Exit(1)
}

func doVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	rerun := fs.Bool("rerun", false, "also re-execute the receipt command in-process and compare the re-derived result")
	verbose := fs.Bool("v", false, "log each verification step")
	_ = fs.Parse(args)
	dirs := fs.Args()
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "runpack verify: no pack directories given")
		os.Exit(2)
	}
	opts := runpack.VerifyOptions{Rerun: *rerun}
	if *verbose {
		opts.Log = func(format string, a ...any) { fmt.Printf("  "+format+"\n", a...) }
	}
	bad := 0
	for _, dir := range dirs {
		if *verbose {
			fmt.Printf("%s:\n", dir)
		}
		if err := runpack.Verify(dir, opts); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", dir, err)
			bad++
			continue
		}
		fmt.Printf("ok   %s\n", dir)
	}
	if bad > 0 {
		os.Exit(1)
	}
}

func doLs(args []string) {
	root := "."
	if len(args) > 0 {
		root = args[0]
	}
	dirs, err := runpack.List(root)
	if err != nil {
		fail(err)
	}
	for _, dir := range dirs {
		m, _, err := runpack.ReadManifest(dir)
		if err != nil {
			fmt.Printf("%-50s (unreadable: %v)\n", filepath.Base(dir), err)
			continue
		}
		fmt.Printf("%-50s %-10s %2d files  %s\n", filepath.Base(dir), m.Kind, len(m.Files), m.Command)
	}
}

func doShow(args []string) {
	if len(args) != 1 {
		usage()
	}
	dir := args[0]
	m, raw, err := runpack.ReadManifest(dir)
	if err != nil {
		fail(err)
	}
	receipt, err := os.ReadFile(filepath.Join(dir, runpack.ReceiptName))
	if err != nil {
		fail(err)
	}
	fmt.Printf("pack:     %s\n", dir)
	fmt.Printf("kind:     %s\n", m.Kind)
	fmt.Printf("command:  %s\n", m.Command)
	fmt.Printf("result:   %s (sha256 %s)\n", m.Result, short(m.ResultSHA256))
	fmt.Printf("receipt:  %s\n", strings.TrimSpace(string(receipt)))
	fmt.Printf("manifest: %d bytes, %d members\n", len(raw), len(m.Files))
	for _, fe := range m.Files {
		extra := ""
		if fe.Replay != nil {
			extra = fmt.Sprintf("  [%d snapshots -> cycle %d, state %s]", fe.Replay.Snapshots, fe.Replay.FinalCycle, fe.Replay.StateDigest)
		}
		fmt.Printf("  %-36s %8d  %s%s\n", fe.Name, fe.Size, short(fe.SHA256), extra)
	}
}

func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}
