// Command verifybench regenerates the paper's Figure 12: the time the
// bounded checker takes to discharge every proof obligation, per suite —
// the monolithic abstraction (dominated by the entangled
// allocate_app_mem_region obligation), the granular redesign, and the
// interrupt/context-switch models. Each suite row also reports the
// checker's observability numbers: states enumerated, contracts checked
// and domain coverage.
//
// Usage:
//
//	verifybench [-quick] [-parallel N] [-specs] [-prom FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ticktock/internal/metrics"
	"ticktock/internal/specs"
	"ticktock/internal/verify"
)

// coverage renders a [0,1] fraction, or "-" when the spec declares no
// domain size.
func coverage(c float64) string {
	if c < 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", c*100)
}

func row(name string, rep *verify.Report) {
	s := rep.Stats()
	fmt.Printf("%-24s %6d %12s %12s %12s %12s %12d %12d %9s\n",
		name, s.Fns, s.Total.Round(time.Millisecond), s.Max.Round(time.Millisecond),
		s.Mean.Round(time.Microsecond), s.StdDev.Round(time.Microsecond),
		rep.TotalStates(), rep.TotalChecked(), coverage(rep.Coverage()))
}

// specTable prints the per-spec states-enumerated and coverage columns
// for the n slowest obligations of the suite (n <= 0 means all, in
// registration order).
func specTable(name string, rep *verify.Report, n int) {
	results := rep.Results
	if n > 0 {
		results = rep.Slowest(n)
	}
	fmt.Printf("\n%s — per-spec detail:\n", name)
	fmt.Printf("  %-56s %12s %12s %12s %9s\n", "spec", "time", "states", "checked", "coverage")
	for _, res := range results {
		if res.Spec.Body == nil {
			continue // trusted: nothing ran
		}
		fmt.Printf("  %-56s %12s %12d %12d %9s\n",
			res.Spec.Name, res.Elapsed.Round(time.Microsecond),
			res.States, res.Checked, coverage(res.Coverage()))
	}
}

func main() {
	quick := flag.Bool("quick", false, "use the reduced domain scale")
	parallel := flag.Int("parallel", 0, "check obligations with N workers (0 = sequential, the Figure 12 timing mode)")
	perSpec := flag.Bool("specs", false, "print every obligation's states/coverage row (default: 5 slowest per suite)")
	promOut := flag.String("prom", "", "write the checker's metric registry to FILE in Prometheus text format")
	flag.Parse()
	sc := specs.PaperScale
	if *quick {
		sc = specs.QuickScale
	}

	reg := metrics.NewRegistry()
	check := func(r *verify.Registry) *verify.Report {
		total := len(r.Specs())
		return r.RunWith(verify.RunOpts{
			Workers: *parallel,
			Metrics: reg,
			Progress: func(done, _ int, last *verify.Result) {
				fmt.Fprintf(os.Stderr, "\r%4d/%-4d %-56s", done, total, last.Spec.Name)
				if done == total {
					fmt.Fprintf(os.Stderr, "\r%-70s\r", "")
				}
			},
			ProgressEvery: 8,
		})
	}

	fmt.Printf("%-24s %6s %12s %12s %12s %12s %12s %12s %9s\n",
		"Component", "Fns.", "Total", "Max", "Mean", "StdDev", "States", "Checked", "Coverage")
	mono := check(specs.BuildMonolithic(sc))
	row("TickTock (Monolithic)", mono)
	gran := check(specs.BuildGranular(sc))
	row("TickTock (Granular)", gran)
	intr := check(specs.BuildInterrupts(sc))
	row("Interrupts", intr)

	n := 5
	if *perSpec {
		n = 0
	}
	specTable("TickTock (Monolithic)", mono, n)
	specTable("TickTock (Granular)", gran, n)
	specTable("Interrupts", intr, n)

	bad := 0
	for _, rep := range []*verify.Report{mono, gran, intr} {
		for _, f := range rep.Failed() {
			fmt.Fprintf(os.Stderr, "VIOLATION %s: %v\n", f.Spec.Name, f.Violations[0])
			bad++
		}
	}

	// An empty registry has no slowest obligation, and a zero total
	// would turn the fraction into NaN — guard both before indexing
	// and dividing.
	if slowest := mono.Slowest(1); len(slowest) > 0 {
		slow := slowest[0]
		if total := mono.Stats().Total; total > 0 {
			frac := float64(slow.Elapsed) / float64(total) * 100
			fmt.Printf("\nslowest monolithic obligation: %s (%.0f%% of suite time, %d states)\n",
				slow.Spec.Name, frac, slow.States)
		} else {
			fmt.Printf("\nslowest monolithic obligation: %s\n", slow.Spec.Name)
		}
	}

	if *promOut != "" {
		f, err := os.Create(*promOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prom export: %v\n", err)
			os.Exit(1)
		}
		if err := reg.ExportPrometheus(f); err != nil {
			fmt.Fprintf(os.Stderr, "prom export: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "prom export: %v\n", err)
			os.Exit(1)
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}
