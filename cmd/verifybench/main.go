// Command verifybench regenerates the paper's Figure 12: the time the
// bounded checker takes to discharge every proof obligation, per suite —
// the monolithic abstraction (dominated by the entangled
// allocate_app_mem_region obligation), the granular redesign, and the
// interrupt/context-switch models.
//
// Usage:
//
//	verifybench [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ticktock/internal/specs"
	"ticktock/internal/verify"
)

func row(name string, rep *verify.Report) {
	s := rep.Stats()
	fmt.Printf("%-24s %6d %12s %12s %12s %12s\n",
		name, s.Fns, s.Total.Round(time.Millisecond), s.Max.Round(time.Millisecond),
		s.Mean.Round(time.Microsecond), s.StdDev.Round(time.Microsecond))
}

func main() {
	quick := flag.Bool("quick", false, "use the reduced domain scale")
	parallel := flag.Int("parallel", 0, "check obligations with N workers (0 = sequential, the Figure 12 timing mode)")
	flag.Parse()
	sc := specs.PaperScale
	if *quick {
		sc = specs.QuickScale
	}

	fmt.Printf("%-24s %6s %12s %12s %12s %12s\n", "Component", "Fns.", "Total", "Max", "Mean", "StdDev")

	check := func(r *verify.Registry) *verify.Report {
		if *parallel > 0 {
			return r.RunParallel(*parallel)
		}
		return r.Run()
	}
	mono := check(specs.BuildMonolithic(sc))
	row("TickTock (Monolithic)", mono)
	gran := check(specs.BuildGranular(sc))
	row("TickTock (Granular)", gran)
	intr := check(specs.BuildInterrupts(sc))
	row("Interrupts", intr)

	bad := 0
	for _, rep := range []*verify.Report{mono, gran, intr} {
		for _, f := range rep.Failed() {
			fmt.Fprintf(os.Stderr, "VIOLATION %s: %v\n", f.Spec.Name, f.Violations[0])
			bad++
		}
	}

	// An empty registry has no slowest obligation, and a zero total
	// would turn the fraction into NaN — guard both before indexing
	// and dividing.
	if slowest := mono.Slowest(1); len(slowest) > 0 {
		slow := slowest[0]
		if total := mono.Stats().Total; total > 0 {
			frac := float64(slow.Elapsed) / float64(total) * 100
			fmt.Printf("\nslowest monolithic obligation: %s (%.0f%% of suite time)\n", slow.Spec.Name, frac)
		} else {
			fmt.Printf("\nslowest monolithic obligation: %s\n", slow.Spec.Name)
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}
