// Sandbox-escape: reproduce the paper's §2.2 missed-mode-switch bug
// (tock#4246) end to end. The same malicious application runs on three
// kernels:
//
//  1. the Tock baseline with the context-switch bug — the process runs
//     privileged, bypasses the MPU, and corrupts kernel memory;
//  2. the fixed Tock baseline — the process faults at its first illegal
//     store;
//  3. TickTock — same, with the additional guarantee that the fluxarm
//     checker would have rejected the buggy switch before it ever ran.
package main

import (
	"fmt"
	"log"

	"ticktock"
	"ticktock/internal/apps"
	"ticktock/internal/armv7m"
	"ticktock/internal/kernel"
)

// evil tries to overwrite a kernel-owned RAM word.
func evil() ticktock.App {
	return ticktock.App{
		Name: "evil", MinRAM: 8192, InitRAM: 2048, Stack: 1024, KernelHint: 512,
		Build: func(base uint32) *armv7m.Program {
			a := armv7m.NewAssembler(base)
			a.Emit(armv7m.MovImm{Rd: armv7m.R6, Imm: kernel.KernelDataBase}).
				Emit(armv7m.MovImm{Rd: armv7m.R7, Imm: 0x42}).
				Emit(armv7m.Str{Rt: armv7m.R7, Rn: armv7m.R6})
			apps.Puts(a, "ESCAPED THE SANDBOX\n")
			apps.Exit(a, 0)
			return a.MustAssemble()
		},
	}
}

func run(name string, opts ticktock.Options) {
	k, err := ticktock.NewKernel(opts)
	if err != nil {
		log.Fatal(err)
	}
	p, err := k.LoadProcess(evil())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := k.Run(1000); err != nil {
		log.Fatal(err)
	}
	v, _ := k.Board.Machine.Mem.ReadWord(kernel.KernelDataBase)
	fmt.Printf("=== %s ===\n", name)
	fmt.Printf("process state: %s\n", p.State)
	fmt.Printf("kernel memory word: 0x%02x (0x42 means the kernel was corrupted)\n", v)
	fmt.Printf("output: %q\n\n", k.Output(p))
}

func main() {
	run("Tock with tock#4246 (missed mode switch)", ticktock.Options{
		Flavour: ticktock.FlavourTock,
		Bugs:    ticktock.BugSet{MissedModeSwitch: true},
	})
	run("Tock with the upstream fix", ticktock.Options{Flavour: ticktock.FlavourTock})
	run("TickTock (verified granular kernel)", ticktock.Options{Flavour: ticktock.FlavourTickTock})

	// The verification story: the fluxarm checker catches the buggy
	// context switch without ever running a malicious app.
	fmt.Println("=== fluxarm bounded checker ===")
	if errs := ticktock.CheckContextSwitch(4, true); len(errs) > 0 {
		fmt.Printf("buggy switch: %d contract violations; first:\n  %v\n", len(errs), errs[0])
	} else {
		fmt.Println("buggy switch: checker missed the bug (should not happen)")
	}
	if errs := ticktock.CheckContextSwitch(4, false); len(errs) == 0 {
		fmt.Println("fixed switch: all round-trip obligations hold")
	} else {
		fmt.Printf("fixed switch: unexpected violation: %v\n", errs[0])
	}
}
