// Sensornet: a multi-application workload of the kind Tock's introduction
// motivates — a sensor sampler, an aggregator receiving readings over IPC,
// and a heartbeat blinker — all isolated from each other, scheduled
// preemptively, and running on the TickTock kernel.
package main

import (
	"fmt"
	"log"

	"ticktock"
	"ticktock/internal/apps"
	"ticktock/internal/armv7m"
	"ticktock/internal/kernel"
)

// aggregator (process 0) allows an RW buffer and waits for a reading.
func aggregator() ticktock.App {
	return ticktock.App{
		Name: "aggregator", MinRAM: 8192, InitRAM: 2048, Stack: 1024, KernelHint: 512,
		Build: func(base uint32) *armv7m.Program {
			a := armv7m.NewAssembler(base)
			a.Emit(armv7m.MovReg{Rd: armv7m.R4, Rm: armv7m.R0}).
				Emit(armv7m.AddImm{Rd: armv7m.R4, Rn: armv7m.R4, Imm: 1600})
			a.Emit(armv7m.MovImm{Rd: armv7m.R0, Imm: kernel.DriverIPC}).
				Emit(armv7m.MovReg{Rd: armv7m.R1, Rm: armv7m.R4}).
				Emit(armv7m.MovImm{Rd: armv7m.R2, Imm: 8}).
				Emit(armv7m.SVC{Imm: kernel.SVCAllowRW})
			apps.Syscall(a, kernel.SVCCommand, kernel.DriverAlarm, 1, 120000, 0)
			a.Emit(armv7m.SVC{Imm: kernel.SVCYield})
			apps.Puts(a, "aggregated reading: 0x")
			a.Emit(armv7m.Ldr{Rt: armv7m.R5, Rn: armv7m.R4})
			apps.PutHex(a, armv7m.R5)
			apps.Puts(a, "\n")
			apps.Exit(a, 0)
			return a.MustAssemble()
		},
	}
}

// sampler reads the temperature sensor and ships the reading to the
// aggregator through the kernel's checked IPC copy.
func sampler() ticktock.App {
	return ticktock.App{
		Name: "sampler", MinRAM: 8192, InitRAM: 2048, Stack: 1024, KernelHint: 512,
		Build: func(base uint32) *armv7m.Program {
			a := armv7m.NewAssembler(base)
			a.Emit(armv7m.MovReg{Rd: armv7m.R4, Rm: armv7m.R0}).
				Emit(armv7m.AddImm{Rd: armv7m.R4, Rn: armv7m.R4, Imm: 1600})
			// reading = temp sensor value, stored into the IPC buffer.
			apps.Syscall(a, kernel.SVCCommand, kernel.DriverTemp, 0, 0, 0)
			a.Emit(armv7m.Str{Rt: armv7m.R0, Rn: armv7m.R4})
			a.Emit(armv7m.MovImm{Rd: armv7m.R0, Imm: kernel.DriverIPC}).
				Emit(armv7m.MovReg{Rd: armv7m.R1, Rm: armv7m.R4}).
				Emit(armv7m.MovImm{Rd: armv7m.R2, Imm: 8}).
				Emit(armv7m.SVC{Imm: kernel.SVCAllowRO})
			apps.Syscall(a, kernel.SVCCommand, kernel.DriverIPC, 0, 0, 0)
			apps.Puts(a, "sampler: reading shipped\n")
			apps.Exit(a, 0)
			return a.MustAssemble()
		},
	}
}

// heartbeat blinks an LED forever; preemption keeps it from starving the
// others.
func heartbeat() ticktock.App {
	return ticktock.App{
		Name: "heartbeat", MinRAM: 8192, InitRAM: 2048, Stack: 1024, KernelHint: 512,
		Build: func(base uint32) *armv7m.Program {
			a := armv7m.NewAssembler(base)
			a.Label("loop")
			apps.Syscall(a, kernel.SVCCommand, kernel.DriverLED, 0, 0, 0)
			apps.Syscall(a, kernel.SVCCommand, kernel.DriverAlarm, 1, 20000, 0)
			a.Emit(armv7m.SVC{Imm: kernel.SVCYield})
			a.BTo(armv7m.AL, "loop")
			return a.MustAssemble()
		},
	}
}

func main() {
	k, err := ticktock.NewKernel(ticktock.Options{Flavour: ticktock.FlavourTickTock, Timeslice: 5000})
	if err != nil {
		log.Fatal(err)
	}
	var procs []*ticktock.Process
	for _, app := range []ticktock.App{aggregator(), sampler(), heartbeat()} {
		p, err := k.LoadProcess(app)
		if err != nil {
			log.Fatal(err)
		}
		procs = append(procs, p)
	}
	if _, err := k.Run(200); err != nil {
		log.Fatal(err)
	}
	for _, p := range procs {
		fmt.Printf("--- %s [%s]\n%s", p.Name, p.State, k.Output(p))
	}
	fmt.Printf("\nLEDs: %v, SysTick preemptions: %d, cycles: %d\n",
		k.LEDs, k.Board.Machine.Tick.Fired, k.Meter().Cycles())
}
