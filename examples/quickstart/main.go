// Quickstart: boot a TickTock kernel on the simulated board, load two
// applications, run them to completion, and show that the verified MPU
// configuration kept the misbehaving one in its sandbox — then dump the
// run's metrics table and folded-stack cycle profile.
package main

import (
	"fmt"
	"log"
	"os"

	"ticktock"
	"ticktock/internal/apps"
	"ticktock/internal/armv7m"
	"ticktock/internal/kernel"
)

func main() {
	reg := ticktock.NewMetricsRegistry()
	k, err := ticktock.NewKernel(ticktock.Options{Flavour: ticktock.FlavourTickTock, Metrics: reg})
	if err != nil {
		log.Fatal(err)
	}

	// A friendly app: prints a message and exits.
	hello := ticktock.App{
		Name: "hello", MinRAM: 8192, InitRAM: 2048, Stack: 1024, KernelHint: 512,
		Build: func(base uint32) *armv7m.Program {
			a := armv7m.NewAssembler(base)
			apps.Puts(a, "hello from userspace!\n")
			apps.Exit(a, 0)
			return a.MustAssemble()
		},
	}

	// A misbehaving app: tries to read another process's memory.
	snoop := ticktock.App{
		Name: "snoop", MinRAM: 8192, InitRAM: 2048, Stack: 1024, KernelHint: 512,
		Build: func(base uint32) *armv7m.Program {
			a := armv7m.NewAssembler(base)
			apps.Puts(a, "snooping...\n")
			// memory_start - 0x1000: someone else's RAM.
			apps.Syscall(a, kernel.SVCMemop, kernel.MemopMemoryStart, 0, 0, 0)
			a.Emit(armv7m.MovImm{Rd: armv7m.R5, Imm: 0x1000}).
				Emit(armv7m.Sub{Rd: armv7m.R4, Rn: armv7m.R0, Rm: armv7m.R5}).
				Emit(armv7m.Ldr{Rt: armv7m.R6, Rn: armv7m.R4})
			apps.Puts(a, "UNREACHABLE: read someone else's memory\n")
			apps.Exit(a, 1)
			return a.MustAssemble()
		},
	}

	p1, err := k.LoadProcess(hello)
	if err != nil {
		log.Fatal(err)
	}
	p2, err := k.LoadProcess(snoop)
	if err != nil {
		log.Fatal(err)
	}

	if _, err := k.Run(1000); err != nil {
		log.Fatal(err)
	}

	for _, p := range []*ticktock.Process{p1, p2} {
		fmt.Printf("--- %s [%s]\n%s\n", p.Name, p.State, k.Output(p))
	}
	fmt.Printf("total simulated cycles: %d\n", k.Meter().Cycles())

	// The same run, through the observability subsystem: the metrics
	// table and the folded-stack profile (metrics observe the cycle
	// meter, they never charge it — the numbers above are unchanged).
	k.PublishMetrics()
	fmt.Printf("\n--- metrics\n")
	if err := reg.ExportTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
	prof := k.Profile()
	fmt.Printf("\n--- folded-stack cycle profile (%d cycles, feed to flamegraph.pl)\n", prof.Total())
	if err := prof.ExportFolded(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
