// Grant-overlap: reproduce the paper's headline MPU-configuration bug
// (tock#4366, §3.4) end to end. The monolithic allocator's overlap
// readjustment doubles region_size but not mem_size_po2, so for certain
// process geometries the last enabled subregion still covers the
// kernel-owned grant region.
//
// The program searches process geometries for one where the buggy
// kernel's hardware-enabled span overlaps the grant region, then runs the
// same grant-reading application on three kernels:
//
//  1. Tock with the bug — the process reads kernel grant memory;
//  2. Tock with the upstream fix — MemManage fault;
//  3. TickTock — the geometry cannot even be constructed unsafely: the
//     granular allocator derives the kernel view from the hardware view,
//     so the checker-verified invariant appBreak < kernelBreak holds.
package main

import (
	"fmt"
	"log"

	"ticktock"
	"ticktock/internal/apps"
	"ticktock/internal/armv7m"
	"ticktock/internal/kernel"
)

// grantReader reads the word at its kernel break (the first grant byte)
// and reports whether the read survived.
func grantReader(minRAM, initRAM, hint uint32) ticktock.App {
	return ticktock.App{
		Name: "grantreader", MinRAM: minRAM, InitRAM: initRAM, Stack: 512, KernelHint: hint,
		Build: func(base uint32) *armv7m.Program {
			a := armv7m.NewAssembler(base)
			// kernelBreak = appBreak + grantFree.
			apps.Syscall(a, kernel.SVCMemop, kernel.MemopAppBreak, 0, 0, 0)
			a.Emit(armv7m.MovReg{Rd: armv7m.R4, Rm: armv7m.R0})
			apps.Syscall(a, kernel.SVCMemop, kernel.MemopGrantFree, 0, 0, 0)
			a.Emit(armv7m.Add{Rd: armv7m.R4, Rn: armv7m.R4, Rm: armv7m.R0}).
				Emit(armv7m.Ldr{Rt: armv7m.R5, Rn: armv7m.R4, Imm: 0})
			apps.Puts(a, "READ KERNEL GRANT MEMORY\n")
			apps.Exit(a, 0)
			return a.MustAssemble()
		},
	}
}

// tryGeometry runs the reader on one kernel build and reports the outcome.
func tryGeometry(opts ticktock.Options, minRAM, initRAM, hint uint32) (state string, escaped bool, err error) {
	k, err := ticktock.NewKernel(opts)
	if err != nil {
		return "", false, err
	}
	p, err := k.LoadProcess(grantReader(minRAM, initRAM, hint))
	if err != nil {
		return "load-failed: " + err.Error(), false, nil
	}
	if _, err := k.Run(500); err != nil {
		return "", false, err
	}
	out := k.Output(p)
	return p.State.String(), p.State.String() == "exited" && len(out) > 0, nil
}

func main() {
	buggy := ticktock.Options{Flavour: ticktock.FlavourTock, Bugs: ticktock.BugSet{GrantOverlap: true}}
	fixed := ticktock.Options{Flavour: ticktock.FlavourTock}
	granular := ticktock.Options{Flavour: ticktock.FlavourTickTock}

	// Search geometries: the bug needs the enabled-subregion end to spill
	// past the kernel break after the (insufficient) readjustment.
	var minRAM, initRAM, hint uint32
	found := false
	for _, init := range []uint32{1600, 2048, 2496, 3008, 3520} {
		for _, h := range []uint32{340, 520, 1000, 1200} {
			for _, min := range []uint32{init + h, init + h + 600} {
				state, escaped, err := tryGeometry(buggy, min, init, h)
				if err != nil {
					log.Fatal(err)
				}
				_ = state
				if escaped {
					minRAM, initRAM, hint = min, init, h
					found = true
				}
				if found {
					break
				}
			}
			if found {
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		fmt.Println("no overlapping geometry in the search domain (bug may need a wider sweep)")
		return
	}
	fmt.Printf("counterexample geometry: minRAM=%d initRAM=%d grantHint=%d\n\n", minRAM, initRAM, hint)

	for _, tc := range []struct {
		name string
		opts ticktock.Options
	}{
		{"Tock with tock#4366 (grant overlap)", buggy},
		{"Tock with the upstream fix", fixed},
		{"TickTock (verified granular kernel)", granular},
	} {
		state, escaped, err := tryGeometry(tc.opts, minRAM, initRAM, hint)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "isolation held"
		if escaped {
			verdict = "ISOLATION BROKEN: process read grant memory"
		}
		fmt.Printf("=== %s ===\nprocess state: %s — %s\n\n", tc.name, state, verdict)
	}
}
