// DMA-safety: reproduce the paper's §4.6 DMA hazard and TickTock's fix.
// The legacy TakeCell pattern lets a driver take its buffer back while the
// DMA engine is still writing it (torn data, aliased ownership); the
// DMACell interface makes that impossible — placement yields the only
// value the engine accepts, and retrieval is refused until the transfer
// completes.
package main

import (
	"fmt"
	"log"

	"ticktock/internal/armv7m"
	"ticktock/internal/dma"
)

func main() {
	mem := armv7m.NewMemory()
	if _, err := mem.Map("ram", 0x2000_0000, 0x1_0000); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== legacy TakeCell (the hazard) ===")
	{
		e := dma.NewEngine(mem)
		var cell dma.TakeCell
		buf := dma.Buffer{Addr: 0x2000_0100, Len: 8}
		cell.Put(buf)
		if err := e.ConfigureRaw(buf.Addr, buf.Len, 0xFF); err != nil {
			log.Fatal(err)
		}
		if err := e.Advance(4); err != nil { // transfer half done
			log.Fatal(err)
		}
		got, _ := cell.Take() // nothing stops this
		half, _ := mem.LoadByte(got.Addr + 2)
		tail, _ := mem.LoadByte(got.Addr + 6)
		fmt.Printf("driver took the buffer mid-transfer: byte[2]=0x%02x byte[6]=0x%02x (torn!)\n", half, tail)
		if err := e.Advance(4); err != nil {
			log.Fatal(err)
		}
		fmt.Println("...and the engine kept writing memory the driver now owns")
	}

	fmt.Println("\n=== DMACell (the fix) ===")
	{
		e := dma.NewEngine(mem)
		var cell dma.Cell
		w, err := cell.Place(dma.Buffer{Addr: 0x2000_0200, Len: 8})
		if err != nil {
			log.Fatal(err)
		}
		if err := e.Configure(w, 0x5A); err != nil {
			log.Fatal(err)
		}
		if err := e.Advance(4); err != nil {
			log.Fatal(err)
		}
		if _, err := cell.Completed(); err != nil {
			fmt.Printf("mid-transfer retrieval refused: %v\n", err)
		}
		if err := e.Advance(4); err != nil {
			log.Fatal(err)
		}
		got, err := cell.Completed()
		if err != nil {
			log.Fatal(err)
		}
		b, _ := mem.LoadByte(got.Addr + 6)
		fmt.Printf("after completion the buffer comes back whole: byte[6]=0x%02x\n", b)

		// And the engine's safe path rejects raw integers entirely.
		if err := e.Configure(dma.Wrapper{}, 0); err != nil {
			fmt.Printf("forged wrapper rejected: %v\n", err)
		}
	}
}
