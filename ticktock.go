// Package ticktock is the public API of TickTock-Go, a simulation-backed
// reproduction of "TickTock: Verified Isolation in a Production Embedded
// OS" (SOSP 2025).
//
// The package exposes the pieces a downstream user composes:
//
//   - a simulated ARMv7-M board running a Tock-style kernel in two
//     flavours — TickTock (the verified granular MPU abstraction) and
//     Tock (the monolithic baseline, optionally with the paper's
//     published bugs re-enabled),
//   - user applications assembled for the machine model,
//   - the verification registry (the Flux stand-in) with bounded
//     exhaustive checking of every isolation obligation,
//   - the evaluation harnesses regenerating the paper's tables and
//     figures (differential testing, cycle benchmarks, memory footprint,
//     verification times, proof effort).
//
// See examples/quickstart for a three-minute tour.
package ticktock

import (
	"ticktock/internal/apps"
	"ticktock/internal/cyclebench"
	"ticktock/internal/difftest"
	"ticktock/internal/fluxarm"
	"ticktock/internal/kernel"
	"ticktock/internal/membench"
	"ticktock/internal/metrics"
	"ticktock/internal/monolithic"
	"ticktock/internal/rvkernel"
	"ticktock/internal/specs"
	"ticktock/internal/verify"
)

// Kernel is a running operating-system instance on a simulated board.
type Kernel = kernel.Kernel

// Process is the kernel's per-process record.
type Process = kernel.Process

// App describes an application to load.
type App = kernel.App

// Options configures a kernel build.
type Options = kernel.Options

// Flavour selects the memory-management implementation.
type Flavour = kernel.Flavour

// Kernel flavours.
const (
	// FlavourTickTock is the verified granular abstraction.
	FlavourTickTock = kernel.FlavourTickTock
	// FlavourTock is the monolithic baseline.
	FlavourTock = kernel.FlavourTock
)

// BugSet re-enables the paper's published bugs on the baseline kernel.
type BugSet = monolithic.BugSet

// MetricsRegistry collects counters, gauges and cycle histograms from a
// kernel run. Pass one in Options.Metrics to instrument a kernel; the
// instrumentation observes the simulated-cycle meter but never charges
// it, so a metered run is cycle-identical to an unmetered one.
type MetricsRegistry = metrics.Registry

// MetricLabel is one key=value dimension on a metric series.
type MetricLabel = metrics.Label

// CycleProfile is a folded-stack profile whose stacks sum to the run's
// total simulated cycles (Kernel.Profile returns one).
type CycleProfile = metrics.Profile

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewKernel boots a kernel on a fresh simulated board.
func NewKernel(opts Options) (*Kernel, error) { return kernel.New(opts) }

// ReleaseTests returns the 21 differential-testing cases (§6.1).
func ReleaseTests() []apps.TestCase { return apps.All() }

// TestCase is one differential test.
type TestCase = apps.TestCase

// RunDifferentialCampaign executes all release tests on both kernel
// flavours in parallel and reports the comparison rows (§6.1). Per-case
// failures are recorded in each row's Err field.
func RunDifferentialCampaign() []difftest.Row { return difftest.RunAll() }

// CompareCycles regenerates the Figure 11 cycle table.
func CompareCycles() ([]cyclebench.Row, error) { return cyclebench.Compare() }

// MemoryFootprint regenerates the §6.2 memory microbenchmark rows.
func MemoryFootprint() ([]membench.Result, error) { return membench.RunAll() }

// VerificationScale sizes the bounded checker's domains.
type VerificationScale = specs.Scale

// Verification scales.
var (
	// QuickVerification keeps check runs fast (CI-sized domains).
	QuickVerification = specs.QuickScale
	// PaperVerification uses the Figure 12 domain sizes.
	PaperVerification = specs.PaperScale
)

// VerifyGranular checks every TickTock-side proof obligation.
func VerifyGranular(sc VerificationScale) *verify.Report {
	return specs.BuildGranular(sc).Run()
}

// VerifyMonolithic checks the baseline-abstraction obligations.
func VerifyMonolithic(sc VerificationScale) *verify.Report {
	return specs.BuildMonolithic(sc).Run()
}

// VerifyInterrupts checks the fluxarm context-switch obligations.
func VerifyInterrupts(sc VerificationScale) *verify.Report {
	return specs.BuildInterrupts(sc).Run()
}

// ProofEffort tabulates the registered obligations per component (Fig 10).
func ProofEffort() []verify.EffortRow {
	return specs.BuildAll(specs.QuickScale).Effort()
}

// CheckContextSwitch sweeps the fluxarm round trip; missedModeSwitch
// re-enables tock#4246 so the checker demonstrably catches it.
func CheckContextSwitch(seeds int, missedModeSwitch bool) []error {
	return fluxarm.VerifyInterruptIsolation(seeds, missedModeSwitch)
}

// RunRISCVCampaign executes the RISC-V release-test subset on all three
// supported chips — the paper's §6.1 QEMU runs.
func RunRISCVCampaign() ([]rvkernel.CampaignRow, error) { return rvkernel.RunAllChips() }
